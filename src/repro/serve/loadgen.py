"""A seeded synthetic client fleet for the control plane.

Drives a running :class:`~repro.serve.server.ControlPlane` the way a
smart-lighting deployment would: many concurrent clients, each asking
for adaptations as its dimming setpoint wanders.  Two client species,
mixed by ``ndjson_fraction``:

* **NDJSON clients** hold one persistent socket and pipeline: requests
  leave open-loop on a seeded exponential arrival process while a
  reader task matches correlation ids coming back — the demanding
  case for the server's per-connection queues.
* **HTTP clients** run closed-loop request/response over a keep-alive
  connection with the same arrival gaps between calls.

Everything random flows from ``LoadProfile.seed`` through per-client
:class:`random.Random` instances, so a load run is replayable.  The
:class:`LoadReport` totals are what the overload tests and the
``serve.adapt`` benchmark assert against — in particular
``dropped_connections``, which a healthy server keeps at zero no
matter how hard it sheds.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from dataclasses import dataclass, field

from .protocol import PROTOCOL_VERSION, encode

_SHED_CODES = ("overloaded", "draining")


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one synthetic fleet run."""

    clients: int = 20
    requests_per_client: int = 10
    arrival_rate_hz: float = 500.0    # per-client open-loop arrival rate
    ndjson_fraction: float = 0.5
    dimming_lo: float = 0.3
    dimming_hi: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be positive")
        if self.requests_per_client < 1:
            raise ValueError("requests_per_client must be positive")
        if self.arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be positive")
        if not 0.0 <= self.ndjson_fraction <= 1.0:
            raise ValueError("ndjson_fraction must lie in [0, 1]")
        if not 0.0 < self.dimming_lo <= self.dimming_hi < 1.0:
            raise ValueError("dimming bounds must satisfy 0 < lo <= hi < 1")

    @property
    def ndjson_clients(self) -> int:
        """How many of the clients speak NDJSON (the rest speak HTTP)."""
        return round(self.clients * self.ndjson_fraction)

    @property
    def total_requests(self) -> int:
        """Requests the whole fleet will send."""
        return self.clients * self.requests_per_client


@dataclass
class LoadReport:
    """Aggregated outcome of one fleet run."""

    sent: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    dropped_connections: int = 0
    elapsed_s: float = 0.0
    latencies_s: list = field(default_factory=list)

    @property
    def answered(self) -> int:
        """Replies of any kind (ok + shed + errors)."""
        return self.ok + self.shed + self.errors

    @property
    def throughput_rps(self) -> float:
        """Successful adaptations per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.ok / self.elapsed_s

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (NaN when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {q}")
        if not self.latencies_s:
            return float("nan")
        ordered = sorted(self.latencies_s)
        rank = q / 100.0 * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict:
        """A JSON-able digest (what the serve bench records)."""
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "dropped_connections": self.dropped_connections,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_percentile(50) * 1e3,
            "latency_p95_ms": self.latency_percentile(95) * 1e3,
            "latency_p99_ms": self.latency_percentile(99) * 1e3,
        }

    def render(self) -> str:
        """One human line per fact, for the CLI."""
        s = self.summary()
        lines = [
            f"loadgen: {s['sent']} sent, {s['ok']} ok, {s['shed']} shed, "
            f"{s['errors']} errors, {s['dropped_connections']} dropped "
            f"connections",
            f"loadgen: {s['elapsed_s']:.3f} s, "
            f"{s['throughput_rps']:.0f} adapt/s",
        ]
        if self.latencies_s:
            lines.append(
                f"loadgen: latency p50 {s['latency_p50_ms']:.2f} ms, "
                f"p95 {s['latency_p95_ms']:.2f} ms, "
                f"p99 {s['latency_p99_ms']:.2f} ms")
        return "\n".join(lines)

    def _classify(self, obj: dict, latency_s: float | None) -> None:
        if obj.get("ok"):
            self.ok += 1
            if latency_s is not None:
                self.latencies_s.append(latency_s)
        elif (obj.get("error") or {}).get("code") in _SHED_CODES:
            self.shed += 1
        else:
            self.errors += 1


def _adapt_line(request_id: str, dimming: float) -> bytes:
    return encode({"v": PROTOCOL_VERSION, "op": "adapt", "id": request_id,
                   "dimming": round(dimming, 6)})


async def _pace(rng: random.Random, rate_hz: float) -> None:
    gap = rng.expovariate(rate_hz)
    if gap > 0:
        await asyncio.sleep(min(gap, 0.05))


async def _ndjson_client(host: str, port: int, index: int,
                         profile: LoadProfile, report: LoadReport) -> None:
    rng = random.Random(f"{profile.seed}-ndjson-{index}")
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        report.dropped_connections += 1
        return
    loop = asyncio.get_running_loop()
    sends: dict[str, float] = {}
    n = profile.requests_per_client

    async def collect() -> None:
        received = 0
        while received < n:
            line = await reader.readline()
            if not line:
                report.dropped_connections += 1
                report.errors += n - received
                return
            received += 1
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                report.errors += 1
                continue
            started = sends.pop(obj.get("id"), None)
            report._classify(
                obj, loop.time() - started if started is not None else None)

    collector = loop.create_task(collect())
    try:
        for i in range(n):
            request_id = f"c{index}-{i}"
            dimming = rng.uniform(profile.dimming_lo, profile.dimming_hi)
            sends[request_id] = loop.time()
            writer.write(_adapt_line(request_id, dimming))
            report.sent += 1
            await writer.drain()
            await _pace(rng, profile.arrival_rate_hz)
        await collector
    except (ConnectionError, OSError):
        report.dropped_connections += 1
        collector.cancel()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _read_http_response(reader: asyncio.StreamReader) -> dict | None:
    """One keep-alive HTTP response body as JSON (None on EOF)."""
    status_line = await reader.readline()
    if not status_line:
        return None
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        return {"ok": False, "error": {"code": "bad-reply"}}


async def _http_client(host: str, port: int, index: int,
                       profile: LoadProfile, report: LoadReport) -> None:
    rng = random.Random(f"{profile.seed}-http-{index}")
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        report.dropped_connections += 1
        return
    loop = asyncio.get_running_loop()
    try:
        for i in range(profile.requests_per_client):
            dimming = rng.uniform(profile.dimming_lo, profile.dimming_hi)
            body = _adapt_line(f"h{index}-{i}", dimming)
            head = (f"POST /v1/adapt HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n")
            started = loop.time()
            writer.write(head.encode() + body)
            report.sent += 1
            await writer.drain()
            obj = await _read_http_response(reader)
            if obj is None:
                report.dropped_connections += 1
                report.errors += profile.requests_per_client - i
                return
            report._classify(obj, loop.time() - started)
            await _pace(rng, profile.arrival_rate_hz)
    except (ConnectionError, OSError):
        report.dropped_connections += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_loadgen(host: str, port: int,
                      profile: LoadProfile | None = None) -> LoadReport:
    """Run the whole fleet against a listening server; returns totals."""
    profile = profile if profile is not None else LoadProfile()
    report = LoadReport()
    loop = asyncio.get_running_loop()
    started = loop.time()
    clients = []
    for index in range(profile.clients):
        if index < profile.ndjson_clients:
            clients.append(_ndjson_client(host, port, index, profile, report))
        else:
            clients.append(_http_client(host, port, index, profile, report))
    await asyncio.gather(*clients)
    report.elapsed_s = loop.time() - started
    return report
