"""The always-on asyncio control plane daemon.

One process, one event loop, many concurrent clients.  The listener
speaks two protocols on the same port, told apart by the first byte of
the first line:

* **HTTP/1.1** (first line is a request line): ``GET /healthz``,
  ``GET /metrics`` (Prometheus text exposition via
  :func:`repro.obs.render_prometheus`), ``GET /v1/link`` and
  ``POST /v1/adapt`` / ``POST /v1/link`` with JSON bodies.  Keep-alive
  is honoured, so a client fleet can hold persistent connections.
* **NDJSON** (first line starts with ``{``): a persistent socket
  protocol — one request object per line, one response line each, with
  client correlation ids, for streaming clients that pipeline.

Load discipline, in order: per-connection bounded queues (a pipelining
client that outruns the coalescer gets structured ``overloaded``
replies, its connection stays up), a global in-flight cap, and a
connection cap.  ``SIGTERM``/``SIGINT`` trigger a graceful drain: the
listener closes, in-flight requests finish, new ones are refused with
``draining``, and the process exits 0.

Adapt requests flow through the :class:`~repro.serve.coalescer.
AdaptCoalescer` into the designer's batched path; everything is
instrumented live through ``repro.obs`` counters/gauges/histograms,
which is exactly what ``/metrics`` exposes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from dataclasses import dataclass, field

from ..core.ampdesign import AmppmDesigner
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..link.supervision import BackoffPolicy, LinkSupervisor
from ..obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..obs.metrics import MetricsRegistry
from ..phy.channel import calibrated_channel
from ..phy.optics import LinkGeometry
from .coalescer import AdaptCoalescer
from .protocol import (
    E_BAD_REQUEST,
    E_DRAINING,
    E_INTERNAL,
    E_OVERLOADED,
    HTTP_STATUS,
    PROTOCOL_VERSION,
    AdaptRequest,
    LinkRequest,
    ProtocolError,
    SimpleRequest,
    adapt_result,
    encode,
    error_response,
    ok_response,
    parse_request,
)

JSON_CONTENT_TYPE = "application/json"

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Request-latency histogram bounds (seconds): sub-ms to seconds.
LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5)

_MAX_BODY_BYTES = 1 << 20


def _salvage_id(obj: object) -> str | None:
    """Recover a request id for an error reply, mirroring parse_request.

    Validation failures must still be correlatable on a pipelined
    NDJSON session, so a well-typed ``id`` is echoed even when the
    rest of the envelope is rejected.
    """
    if not isinstance(obj, dict):
        return None
    request_id = obj.get("id")
    if isinstance(request_id, bool):
        return None
    if isinstance(request_id, int):
        return str(request_id)
    return request_id if isinstance(request_id, str) else None


@dataclass(frozen=True)
class ServeConfig:
    """Operating knobs of the control-plane daemon."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0: bind an ephemeral port
    max_connections: int = 1024
    queue_limit: int = 64             # per-connection in-flight adapt cap
    max_inflight: int = 4096          # global in-flight adapt cap
    coalesce_window_s: float = 0.002  # 0 disables coalescing
    max_batch: int = 512
    drain_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.coalesce_window_s < 0:
            raise ValueError("coalesce_window_s cannot be negative")
        if self.max_batch < 1:
            raise ValueError("max_batch must be positive")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s cannot be negative")


class AdaptEngine:
    """The serving data plane: designer + calibrated channel.

    Designs depend only on the (clamped, quantized) dimming level —
    candidate pruning uses the paper's conservative design-time error
    budget, exactly as :class:`~repro.sim.linkmodel.LinkEvaluator`
    works — while the *reported* performance of a design is evaluated
    under the request's actual placement and ambient level.  That split
    is what makes coalescing sound: same bucket, same design.
    """

    def __init__(self, config: SystemConfig | None = None,
                 designer: AmppmDesigner | None = None):
        self.config = config if config is not None else SystemConfig()
        self.designer = (designer if designer is not None
                         else AmppmDesigner(self.config))
        self.channel = calibrated_channel(self.config)

    def bucket(self, dimming: float):
        """The designer memo bucket a request quantizes to."""
        return self.designer.memo_key(dimming)

    def design(self, dimming: float):
        """One designer call (clamped to the supported range)."""
        return self.designer.design_clamped(dimming)

    def errors_for(self, request: AdaptRequest) -> SlotErrorModel:
        """Slot error model at the request's placement and ambient."""
        geometry = LinkGeometry.on_arc(request.distance_m, request.angle_deg)
        return self.channel.slot_error_model(geometry, request.ambient)

    def result(self, request: AdaptRequest, design) -> dict:
        """The response payload for a finished design."""
        return adapt_result(request, design, self.errors_for(request),
                            self.config)

    def adapt_direct(self, request: AdaptRequest) -> dict:
        """The uncoalesced reference path: one designer call, one reply."""
        return self.result(request, self.design(request.dimming))

    def adapt_batch(self, requests: list[AdaptRequest]) -> list[dict]:
        """The batched path: one designer call per unique memo bucket."""
        if not requests:  # design_many rejects empty batches
            return []
        clamped = [self.designer.clamp(r.dimming) for r in requests]
        designs = self.designer.design_many(clamped)
        return [self.result(r, d) for r, d in zip(requests, designs)]


def link_snapshot_metrics(snapshot: dict, registry: MetricsRegistry) -> None:
    """Mirror a supervisor snapshot into gauges on ``registry``.

    One-hot ``repro_serve_link_state{state=...}`` plus the streak and
    backoff numbers — the form ``/metrics`` scrapes and ``repro stats``
    renders from an exported telemetry dump.
    """
    state_gauge = registry.gauge("repro_serve_link_state",
                                 help="supervised link state (one-hot)")
    for state in ("up", "degraded", "down", "probing"):
        state_gauge.set(1.0 if snapshot["state"] == state else 0.0,
                        state=state)
    for key, name in (("fail_streak", "repro_serve_link_fail_streak"),
                      ("crc_streak", "repro_serve_link_crc_streak"),
                      ("ok_streak", "repro_serve_link_ok_streak"),
                      ("transitions", "repro_serve_link_transitions"),
                      ("backoff_remaining_s",
                       "repro_serve_link_backoff_remaining_s")):
        registry.gauge(name, help=f"supervised link {key}").set(
            float(snapshot[key]))
    registry.gauge("repro_serve_link_data_suspended",
                   help="1 when data transmission is suspended").set(
        1.0 if snapshot["data_suspended"] else 0.0)


@dataclass
class _Connection:
    """Book-keeping for one accepted socket."""

    writer: asyncio.StreamWriter
    transport: str = "?"
    inflight: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class ControlPlane:
    """The daemon: listener, dispatcher, coalescer, supervisor, metrics.

    Construct, ``await start()``, and either ``await serve_until()`` a
    shutdown event (the CLI path, with signal handlers) or drive it
    from tests and ``await stop()`` when done.
    """

    def __init__(self, serve_config: ServeConfig | None = None,
                 config: SystemConfig | None = None,
                 registry: MetricsRegistry | None = None,
                 engine: AdaptEngine | None = None,
                 supervisor: LinkSupervisor | None = None,
                 backoff: BackoffPolicy | None = None):
        self.serve_config = (serve_config if serve_config is not None
                             else ServeConfig())
        self.config = config if config is not None else SystemConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.engine = (engine if engine is not None
                       else AdaptEngine(self.config))
        self.supervisor = (supervisor if supervisor is not None
                           else LinkSupervisor())
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.coalescer = AdaptCoalescer(
            self.engine.design, self.engine.bucket,
            window_s=self.serve_config.coalesce_window_s,
            max_batch=self.serve_config.max_batch,
            registry=self.registry)
        self._server: asyncio.Server | None = None
        self._bound_port: int | None = None
        self._connections: dict[int, _Connection] = {}
        self._conn_seq = 0
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._draining = False
        self._started_at = 0.0
        self.shed_count = 0
        self.refused_connections = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        assert self._bound_port is not None, "server not started"
        return self._bound_port

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self.serve_config.host

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress."""
        return self._draining

    @property
    def connection_count(self) -> int:
        """Currently accepted connections."""
        return len(self._connections)

    @property
    def inflight(self) -> int:
        """Adapt requests currently being served."""
        return self._inflight

    async def start(self) -> None:
        """Bind the listener and start accepting connections."""
        loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_at = loop.time()
        self._server = await asyncio.start_server(
            self._on_connection, self.serve_config.host,
            self.serve_config.port)
        self._bound_port = self._server.sockets[0].getsockname()[1]

    async def serve_until(self, shutdown: asyncio.Event) -> None:
        """Serve until ``shutdown`` is set, then drain gracefully."""
        await shutdown.wait()
        await self.stop()

    def install_signal_handlers(self, shutdown: asyncio.Event) -> None:
        """SIGTERM/SIGINT set the shutdown event (graceful drain)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, shutdown.set)
            except NotImplementedError:  # pragma: no cover — non-POSIX
                pass

    async def stop(self) -> None:
        """Graceful drain: finish in-flight work, refuse new, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.coalescer.drain()
        if self._idle is not None and self._inflight > 0:
            try:
                await asyncio.wait_for(self._idle.wait(),
                                       self.serve_config.drain_grace_s)
            except asyncio.TimeoutError:  # pragma: no cover — grace expired
                pass
        for conn in list(self._connections.values()):
            conn.writer.close()

    # -- accounting -----------------------------------------------------

    def _task_started(self) -> None:
        self._inflight += 1
        assert self._idle is not None
        self._idle.clear()

    def _task_finished(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self._idle is not None:
            self._idle.set()

    def _shed(self, reason: str) -> None:
        self.shed_count += 1
        self.registry.counter(
            "repro_serve_shed_total",
            help="requests shed under overload").inc(reason=reason)

    def _observe(self, op: str, transport: str, elapsed_s: float) -> None:
        self.registry.counter(
            "repro_serve_requests_total",
            help="requests served").inc(op=op, transport=transport)
        self.registry.histogram(
            "repro_serve_request_latency_s",
            help="request service latency",
            buckets=LATENCY_BUCKETS).observe(elapsed_s, op=op)

    def _refresh_gauges(self) -> None:
        self.registry.gauge("repro_serve_connections",
                            help="accepted connections").set(
            len(self._connections))
        self.registry.gauge("repro_serve_inflight",
                            help="adapt requests in flight").set(
            self._inflight)
        link_snapshot_metrics(self.supervisor.snapshot(self.backoff),
                              self.registry)

    # -- shared op handlers --------------------------------------------

    def _uptime(self) -> float:
        return asyncio.get_running_loop().time() - self._started_at

    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "version": PROTOCOL_VERSION,
            "uptime_s": round(self._uptime(), 3),
            "connections": len(self._connections),
            "inflight": self._inflight,
            "shed": self.shed_count,
            "coalesce_ratio": round(self.coalescer.coalesce_ratio, 3),
        }

    def _link_payload(self, request: LinkRequest) -> dict:
        now = self._uptime()
        if request.outcome == "success":
            self.supervisor.on_success(now)
        elif request.outcome == "failure":
            self.supervisor.on_failure(now, request.reason)
        elif request.outcome == "probe":
            self.supervisor.start_probing(now)
        elif request.outcome == "probe-success":
            self.supervisor.on_probe_success(now)
        elif request.outcome == "probe-failure":
            self.supervisor.on_probe_failure(now)
        snapshot = self.supervisor.snapshot(self.backoff)
        link_snapshot_metrics(snapshot, self.registry)
        recent = [{"time": t.time, "source": t.source.value,
                   "target": t.target.value, "reason": t.reason}
                  for t in self.supervisor.transitions[-5:]]
        return {**snapshot, "recent_transitions": recent}

    async def _adapt_payload(self, request: AdaptRequest) -> dict:
        design = await self.coalescer.submit(request.dimming)
        return self.engine.result(request, design)

    def _admission_error(self, conn: _Connection,
                         request_id: str | None) -> dict | None:
        """The structured refusal for an adapt request, or None to admit."""
        if self._draining:
            self._shed("draining")
            return error_response(E_DRAINING, "server is draining",
                                  op="adapt", request_id=request_id)
        if conn.inflight >= self.serve_config.queue_limit:
            self._shed("connection-queue")
            return error_response(
                E_OVERLOADED,
                f"connection queue full ({self.serve_config.queue_limit} "
                f"in flight)", op="adapt", request_id=request_id)
        if self._inflight >= self.serve_config.max_inflight:
            self._shed("global-inflight")
            return error_response(
                E_OVERLOADED,
                f"server at capacity ({self.serve_config.max_inflight} "
                f"in flight)", op="adapt", request_id=request_id)
        return None

    # -- connection handling -------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readline()
        except (ConnectionError, ValueError):
            # ValueError is how StreamReader.readline reports a line
            # overrunning the stream limit: a fuzzer-shaped first line
            # with no newline in sight.  No transport was ever
            # established, so a clean close is the whole answer.
            writer.close()
            return
        if not first:
            writer.close()
            return
        is_ndjson = first.lstrip().startswith(b"{")
        if (self._draining
                or len(self._connections) >= self.serve_config.max_connections):
            self.refused_connections += 1
            code = E_DRAINING if self._draining else E_OVERLOADED
            body = error_response(code, "connection refused")
            try:
                if is_ndjson:
                    writer.write(encode(body))
                else:
                    writer.write(self._http_response(503, encode(body),
                                                     keep_alive=False))
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()
            return
        self._conn_seq += 1
        key = self._conn_seq
        conn = _Connection(writer=writer,
                           transport="ndjson" if is_ndjson else "http")
        self._connections[key] = conn
        self.registry.counter(
            "repro_serve_connections_total",
            help="connections accepted").inc(transport=conn.transport)
        try:
            if is_ndjson:
                await self._ndjson_session(first, reader, writer, conn)
            else:
                await self._http_session(first, reader, writer, conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            del self._connections[key]
            writer.close()

    # -- NDJSON transport ----------------------------------------------

    async def _ndjson_session(self, first: bytes,
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter,
                              conn: _Connection) -> None:
        tasks: set[asyncio.Task] = set()
        line = first
        while line:
            stripped = line.strip()
            if stripped:
                task = self._ndjson_dispatch(stripped, writer, conn)
                if task is not None:
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                break
            except ValueError:
                # The line overran the stream limit.  The stream is no
                # longer frame-aligned, so tell the client and close —
                # but as a structured protocol error, never a crash.
                await self._write(writer, conn,
                                  encode(error_response(
                                      E_BAD_REQUEST,
                                      "request line too long")))
                break
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def _ndjson_dispatch(self, raw: bytes, writer: asyncio.StreamWriter,
                         conn: _Connection) -> asyncio.Task | None:
        """Handle one request line; returns the task for adapt requests."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        obj = None
        try:
            obj = json.loads(raw)
            request = parse_request(obj)
        except ProtocolError as exc:
            self._write_soon(writer, conn,
                            encode(error_response(
                                exc.code, exc.message,
                                request_id=_salvage_id(obj))))
            return None
        except json.JSONDecodeError as exc:
            self._write_soon(writer, conn,
                            encode(error_response(E_BAD_REQUEST,
                                                  f"not JSON: {exc}")))
            return None
        except UnicodeDecodeError as exc:
            self._write_soon(writer, conn,
                            encode(error_response(
                                E_BAD_REQUEST,
                                f"not UTF-8: {exc.reason} at byte "
                                f"{exc.start}")))
            return None
        if isinstance(request, AdaptRequest):
            refusal = self._admission_error(conn, request.id)
            if refusal is not None:
                self._write_soon(writer, conn, encode(refusal))
                return None
            conn.inflight += 1
            self._task_started()
            return loop.create_task(
                self._ndjson_adapt(request, writer, conn, started))
        reply = self._simple_reply(request)
        self._observe(request.op, "ndjson", loop.time() - started)
        self._write_soon(writer, conn, encode(reply))
        return None

    def _simple_reply(self, request: "LinkRequest | SimpleRequest") -> dict:
        if isinstance(request, LinkRequest):
            return ok_response("link", self._link_payload(request),
                               request.id)
        if request.op == "health":
            return ok_response("health", self._health_payload(), request.id)
        self._refresh_gauges()
        return ok_response("metrics",
                           {"prometheus": render_prometheus(self.registry)},
                           request.id)

    async def _ndjson_adapt(self, request: AdaptRequest,
                            writer: asyncio.StreamWriter, conn: _Connection,
                            started: float) -> None:
        loop = asyncio.get_running_loop()
        try:
            payload = await self._adapt_payload(request)
            reply = ok_response("adapt", payload, request.id)
        except Exception as exc:  # noqa: BLE001 — reported to the client
            reply = error_response(E_INTERNAL, f"{type(exc).__name__}: {exc}",
                                   op="adapt", request_id=request.id)
        finally:
            conn.inflight -= 1
            self._task_finished()
        self._observe("adapt", "ndjson", loop.time() - started)
        await self._write(writer, conn, encode(reply))

    def _write_soon(self, writer: asyncio.StreamWriter, conn: _Connection,
                    data: bytes) -> None:
        asyncio.get_running_loop().create_task(
            self._write(writer, conn, data))

    async def _write(self, writer: asyncio.StreamWriter, conn: _Connection,
                     data: bytes) -> None:
        async with conn.lock:
            try:
                writer.write(data)
                await writer.drain()
            except ConnectionError:  # client went away mid-reply
                pass

    # -- HTTP transport -------------------------------------------------

    def _http_response(self, status: int, body: bytes,
                       content_type: str = JSON_CONTENT_TYPE,
                       keep_alive: bool = True) -> bytes:
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        return head.encode() + body

    async def _http_session(self, first: bytes,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            conn: _Connection) -> None:
        line = first
        while line:
            parts = line.decode("latin-1").strip().split()
            if len(parts) != 3 or not parts[2].startswith("HTTP/"):
                body = encode(error_response(E_BAD_REQUEST,
                                             "malformed request line"))
                await self._write(writer, conn,
                                  self._http_response(400, body,
                                                      keep_alive=False))
                return
            method, path, _version = parts
            headers: dict[str, str] = {}
            while True:
                try:
                    header = await reader.readline()
                except ValueError:  # header line overran the stream limit
                    body = encode(error_response(E_BAD_REQUEST,
                                                 "header line too long"))
                    await self._write(writer, conn,
                                      self._http_response(400, body,
                                                          keep_alive=False))
                    return
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if not 0 <= length <= _MAX_BODY_BYTES:
                detail = ("request body too large" if length > 0
                          else "invalid content-length")
                body = encode(error_response(E_BAD_REQUEST, detail))
                await self._write(writer, conn,
                                  self._http_response(400, body,
                                                      keep_alive=False))
                return
            body_bytes = await reader.readexactly(length) if length else b""
            keep_alive = headers.get("connection", "keep-alive") != "close"
            status, content_type, payload = await self._http_dispatch(
                method, path, body_bytes, conn)
            await self._write(writer, conn,
                              self._http_response(status, payload,
                                                  content_type, keep_alive))
            if not keep_alive:
                return
            line = await reader.readline()

    async def _http_dispatch(self, method: str, path: str, body: bytes,
                             conn: _Connection) -> tuple[int, str, bytes]:
        loop = asyncio.get_running_loop()
        started = loop.time()
        if path == "/healthz" and method == "GET":
            self._observe("health", "http", loop.time() - started)
            return 200, JSON_CONTENT_TYPE, encode(
                ok_response("health", self._health_payload()))
        if path == "/metrics" and method == "GET":
            self._refresh_gauges()
            self._observe("metrics", "http", loop.time() - started)
            return (200, PROMETHEUS_CONTENT_TYPE,
                    render_prometheus(self.registry).encode())
        if path == "/v1/adapt" and method == "POST":
            return await self._http_adapt(body, conn, started)
        if path == "/v1/link" and method in ("GET", "POST"):
            try:
                obj = json.loads(body) if body else {"v": PROTOCOL_VERSION,
                                                     "op": "link"}
                if isinstance(obj, dict):
                    obj.setdefault("op", "link")
                request = parse_request(obj)
                if not isinstance(request, LinkRequest):
                    raise ProtocolError(E_BAD_REQUEST,
                                        "body op must be 'link'")
            except ProtocolError as exc:
                return 400, JSON_CONTENT_TYPE, encode(
                    error_response(exc.code, exc.message, op="link",
                                   request_id=_salvage_id(obj)))
            except json.JSONDecodeError as exc:
                return 400, JSON_CONTENT_TYPE, encode(
                    error_response(E_BAD_REQUEST, f"not JSON: {exc}",
                                   op="link"))
            except UnicodeDecodeError as exc:
                return 400, JSON_CONTENT_TYPE, encode(
                    error_response(E_BAD_REQUEST,
                                   f"not UTF-8: {exc.reason} at byte "
                                   f"{exc.start}", op="link"))
            payload = self._link_payload(request)
            self._observe("link", "http", loop.time() - started)
            return 200, JSON_CONTENT_TYPE, encode(
                ok_response("link", payload, request.id))
        if path in ("/healthz", "/metrics", "/v1/adapt", "/v1/link"):
            return 405, JSON_CONTENT_TYPE, encode(
                error_response(E_BAD_REQUEST,
                               f"{method} not supported on {path}"))
        return 404, JSON_CONTENT_TYPE, encode(
            error_response(E_BAD_REQUEST, f"unknown path {path}"))

    async def _http_adapt(self, body: bytes, conn: _Connection,
                          started: float) -> tuple[int, str, bytes]:
        loop = asyncio.get_running_loop()
        try:
            obj = json.loads(body)
            if isinstance(obj, dict):
                obj.setdefault("op", "adapt")
            request = parse_request(obj)
            if not isinstance(request, AdaptRequest):
                raise ProtocolError(E_BAD_REQUEST, "body op must be 'adapt'")
        except ProtocolError as exc:
            return HTTP_STATUS.get(exc.code, 400), JSON_CONTENT_TYPE, encode(
                error_response(exc.code, exc.message, op="adapt",
                               request_id=_salvage_id(obj)))
        except json.JSONDecodeError as exc:
            return 400, JSON_CONTENT_TYPE, encode(
                error_response(E_BAD_REQUEST, f"not JSON: {exc}", op="adapt"))
        except UnicodeDecodeError as exc:
            return 400, JSON_CONTENT_TYPE, encode(
                error_response(E_BAD_REQUEST,
                               f"not UTF-8: {exc.reason} at byte "
                               f"{exc.start}", op="adapt"))
        refusal = self._admission_error(conn, request.id)
        if refusal is not None:
            return 503, JSON_CONTENT_TYPE, encode(refusal)
        conn.inflight += 1
        self._task_started()
        try:
            payload = await self._adapt_payload(request)
            reply = ok_response("adapt", payload, request.id)
            status = 200
        except Exception as exc:  # noqa: BLE001 — reported to the client
            reply = error_response(E_INTERNAL, f"{type(exc).__name__}: {exc}",
                                   op="adapt", request_id=request.id)
            status = 500
        finally:
            conn.inflight -= 1
            self._task_finished()
        self._observe("adapt", "http", loop.time() - started)
        return status, JSON_CONTENT_TYPE, encode(reply)


async def run_daemon(serve_config: ServeConfig | None = None,
                     config: SystemConfig | None = None,
                     registry: MetricsRegistry | None = None,
                     out=None) -> ControlPlane:
    """The CLI daemon body: start, announce, serve until SIGTERM, drain.

    Returns the (stopped) control plane so the caller can report final
    stats or export telemetry.
    """
    out = out if out is not None else sys.stdout
    plane = ControlPlane(serve_config, config, registry)
    shutdown = asyncio.Event()
    await plane.start()
    plane.install_signal_handlers(shutdown)
    print(f"repro serve: listening on {plane.host}:{plane.port} "
          f"(HTTP/1.1 + NDJSON, coalesce window "
          f"{plane.serve_config.coalesce_window_s * 1e3:g} ms)",
          file=out, flush=True)
    await plane.serve_until(shutdown)
    return plane
