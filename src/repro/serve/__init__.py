"""The always-on control plane: AMPPM adaptation served at fleet scale.

The paper's transmitter adapts when *its* lighting controller moves the
setpoint; a deployment has hundreds of luminaires asking one control
plane.  ``repro.serve`` is that daemon, stdlib-only on top of asyncio:

* :mod:`~repro.serve.protocol` — the versioned JSON wire protocol
  (``adapt`` / ``link`` / ``health`` / ``metrics``) shared by both
  transports, with strict validation and structured errors;
* :mod:`~repro.serve.coalescer` — deadline-driven micro-batching that
  folds concurrent ``adapt`` requests into one designer call per
  quantized dimming bucket;
* :mod:`~repro.serve.server` — the dual-protocol listener (minimal
  HTTP/1.1 + persistent NDJSON) with bounded queues, overload
  shedding, live ``repro.obs`` metrics and graceful SIGTERM drain;
* :mod:`~repro.serve.loadgen` — a seeded synthetic client fleet for
  the tests and the ``serve.adapt`` benchmark.

Start one from the CLI with ``repro serve`` (add ``--load`` to point
the synthetic fleet at it and exit with a report).
"""

from .coalescer import AdaptCoalescer
from .loadgen import LoadProfile, LoadReport, run_loadgen
from .protocol import (
    HTTP_STATUS,
    LINK_OUTCOMES,
    OPS,
    PROTOCOL_VERSION,
    AdaptRequest,
    LinkRequest,
    ProtocolError,
    SimpleRequest,
    adapt_result,
    encode,
    error_response,
    ok_response,
    parse_line,
    parse_request,
)
from .server import (
    LATENCY_BUCKETS,
    AdaptEngine,
    ControlPlane,
    ServeConfig,
    link_snapshot_metrics,
    run_daemon,
)

__all__ = [
    "AdaptCoalescer",
    "AdaptEngine",
    "AdaptRequest",
    "ControlPlane",
    "HTTP_STATUS",
    "LATENCY_BUCKETS",
    "LINK_OUTCOMES",
    "LinkRequest",
    "LoadProfile",
    "LoadReport",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeConfig",
    "SimpleRequest",
    "adapt_result",
    "encode",
    "error_response",
    "link_snapshot_metrics",
    "ok_response",
    "parse_line",
    "parse_request",
    "run_daemon",
    "run_loadgen",
]
