"""All modulation schemes behind the common interface, AMPPM included.

This module is the bridge between the core AMPPM designer and the
baseline comparison machinery: :class:`AmppmScheme` wraps
:class:`repro.core.AmppmDesigner` in the :class:`ModulationScheme`
interface so the frame codec, the MAC and every experiment harness can
treat all schemes uniformly.
"""

from __future__ import annotations

from typing import Sequence

from .baselines.base import ModulationScheme, SchemeDesign
from .baselines.mppm import Mppm, MppmDesign
from .baselines.ookct import OokCt, OokCtDesign
from .baselines.oppm import Oppm, OppmDesign
from .baselines.vppm import Vppm, VppmDesign
from .core.ampdesign import AmppmDesign, AmppmDesigner
from .core.coding import SuperSymbolCodec
from .core.errormodel import SlotErrorModel
from .core.params import SystemConfig


class AmppmSchemeDesign(SchemeDesign):
    """An AMPPM super-symbol exposed through the scheme interface."""

    def __init__(self, design: AmppmDesign, config: SystemConfig):
        self.target_dimming = design.target_dimming
        self.design = design
        self.config = config
        self._codec = SuperSymbolCodec(design.super_symbol)

    @property
    def super_symbol(self):
        """The underlying super-symbol ⟨S1, m1, S2, m2⟩."""
        return self.design.super_symbol

    @property
    def achieved_dimming(self) -> float:
        return self.design.achieved_dimming

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        return self.design.normalized_rate(errors)

    def payload_slots(self, n_bits: int) -> int:
        return self._codec.slots_for_bits(n_bits)

    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        p_ok = 1.0
        for codec in self._codec.symbol_plan(n_bits):
            p_ok *= 1.0 - codec.pattern.symbol_error_rate(errors)
        return p_ok

    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        slots, _padding = self._codec.encode_stream(bits)
        return slots

    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        return self._codec.decode_stream(slots, n_bits)


class AmppmScheme(ModulationScheme):
    """AMPPM as a :class:`ModulationScheme` (the paper's contribution)."""

    name = "AMPPM"

    def __init__(self, config: SystemConfig | None = None,
                 errors: SlotErrorModel | None = None):
        super().__init__(config)
        self.designer = AmppmDesigner(self.config, errors)

    @property
    def supported_range(self) -> tuple[float, float]:
        return self.designer.supported_range

    def design(self, dimming: float) -> AmppmSchemeDesign:
        return AmppmSchemeDesign(self.designer.design(dimming), self.config)


def standard_schemes(config: SystemConfig | None = None,
                     errors: SlotErrorModel | None = None) -> list[ModulationScheme]:
    """The paper's comparison set: AMPPM, OOK-CT and MPPM(N=20)."""
    config = config if config is not None else SystemConfig()
    return [AmppmScheme(config, errors), OokCt(config), Mppm(config)]


__all__ = [
    "AmppmScheme",
    "AmppmSchemeDesign",
    "ModulationScheme",
    "Mppm",
    "MppmDesign",
    "OokCt",
    "OokCtDesign",
    "Oppm",
    "OppmDesign",
    "SchemeDesign",
    "Vppm",
    "VppmDesign",
    "standard_schemes",
]
