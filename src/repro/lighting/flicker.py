"""Flicker detectors for both of the paper's flicker types (Section 2.2).

* **Type-I** — slow ON/OFF alternation: the light's repetition
  frequency falls below the fusion threshold f_th.  Checked on slot
  streams, both structurally (no constant run longer than the Eq. (4)
  bound) and perceptually (a moving average over the fusion window must
  not swing visibly).
* **Type-II** — a slow *large* step of the average intensity: checked
  on dimming-level traces, where every individual move must stay under
  the perceived resolution tau_p.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.params import SystemConfig
from ..core.perception import perceived_step


def max_constant_run(slots: Sequence[bool]) -> int:
    """Length of the longest run of identical slot values."""
    longest = 0
    current = 0
    previous: bool | None = None
    for slot in slots:
        if slot == previous:
            current += 1
        else:
            current = 1
            previous = slot
        longest = max(longest, current)
    return longest


def type1_structural_ok(slots: Sequence[bool], config: SystemConfig) -> bool:
    """No constant run exceeds one fusion period (N_max slots).

    This is the slot-stream analogue of the Eq. (4) super-symbol bound:
    a run of N_max identical slots holds the light steady for a full
    1/f_th, so anything longer alternates below the fusion frequency.
    """
    return max_constant_run(slots) <= config.n_max_super


@dataclass(frozen=True)
class Type1Report:
    """Perceptual Type-I analysis of a slot stream."""

    window_slots: int
    mean_brightness: float
    max_deviation: float
    threshold: float

    @property
    def flicker_free(self) -> bool:
        """True when the fused brightness never swings visibly."""
        return self.max_deviation <= self.threshold


def type1_perceptual(slots: Sequence[bool], config: SystemConfig,
                     threshold: float | None = None) -> Type1Report:
    """Moving-average flicker analysis over the eye's fusion window.

    The eye low-passes at roughly f_th; a moving average over one
    fusion period approximates the perceived brightness.  Flicker-free
    means that perceived brightness stays within ``threshold`` of its
    mean (default: the Type-II resolution bound scaled to measured
    domain at mid brightness, a deliberately strict choice).
    """
    window = config.n_max_super
    values = np.asarray([1.0 if s else 0.0 for s in slots])
    if values.size < window:
        raise ValueError(
            f"need at least one fusion window ({window} slots), got {values.size}"
        )
    kernel = np.ones(window) / window
    fused = np.convolve(values, kernel, mode="valid")
    mean = float(fused.mean())
    deviation = float(np.abs(fused - mean).max())
    if threshold is None:
        # tau_p is defined in the perceived domain; at mid brightness
        # d(perceived)/d(measured) ≈ 1/(2*sqrt(0.5)) ≈ 0.71, so a
        # measured swing of ~1.4*tau_p maps to tau_p perceived.
        threshold = 1.5 * config.tau_perceived
    return Type1Report(window, mean, deviation, threshold)


@dataclass(frozen=True)
class Type2Report:
    """Type-II analysis of a dimming-level trajectory."""

    n_moves: int
    max_perceived_step: float
    threshold: float
    worst_index: int

    @property
    def flicker_free(self) -> bool:
        """True when no single move exceeds the perceived bound."""
        return self.max_perceived_step <= self.threshold + 1e-12


def type2_analyze(levels: Sequence[float], config: SystemConfig) -> Type2Report:
    """Check every consecutive move of a measured-intensity trace."""
    levels = list(levels)
    if len(levels) < 2:
        return Type2Report(0, 0.0, config.tau_perceived, 0)
    worst = 0.0
    worst_index = 0
    for i, (a, b) in enumerate(zip(levels, levels[1:])):
        step = perceived_step(a, b)
        if step > worst:
            worst = step
            worst_index = i
    return Type2Report(len(levels) - 1, worst, config.tau_perceived, worst_index)
