"""The flicker-perception user study (Section 6.3, Table 2).

The paper recruits 20 volunteers (10 male, 10 female, 19-41 years old)
and asks, for a grid of dimming-step resolutions, whether they perceive
flickering — under two viewing manners (staring at the LED vs. judging
by its reflection) and three ambient conditions:

* **L1** — sunny day, ceiling lights on (8900-9760 lux)
* **L2** — sunny day, ceiling lights off (7960-8200 lux)
* **L3** — blind down, lights off (12-21 lux)

We model each volunteer as a perception threshold per (manner,
condition): a step below the threshold is invisible to them.  The
population thresholds are Gaussian, calibrated so the census of a
seeded 20-volunteer sample reproduces Table 2's structure: direct
viewing is roughly ten times more sensitive than indirect, and darker
ambient conditions lower the threshold (dark-adapted pupils).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class Viewing(Enum):
    """How the volunteer observes the LED."""

    DIRECT = "direct"
    INDIRECT = "indirect"


class AmbientCondition(Enum):
    """The three test conditions, with their lux bands."""

    L1 = "L1"
    L2 = "L2"
    L3 = "L3"

    @property
    def lux_band(self) -> tuple[float, float]:
        return {"L1": (8900.0, 9760.0),
                "L2": (7960.0, 8200.0),
                "L3": (12.0, 21.0)}[self.value]


@dataclass(frozen=True)
class ThresholdDistribution:
    """Gaussian threshold population, clipped to a plausible band."""

    mean: float
    std: float
    lo: float
    hi: float

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        draws = rng.normal(self.mean, self.std, size=n)
        return np.clip(draws, self.lo, self.hi)

    def fraction_perceiving(self, resolution: float) -> float:
        """Population fraction that would notice a step of ``resolution``.

        A volunteer perceives the step when their threshold is at or
        below it; with clipped Gaussians the clip bounds make the 0%
        and 100% rows of Table 2 exact.
        """
        if resolution < self.lo:
            return 0.0
        if resolution >= self.hi:
            return 1.0
        z = (resolution - self.mean) / self.std
        from math import erf, sqrt
        return 0.5 * (1.0 + erf(z / sqrt(2.0)))


#: Calibrated to Table 2 (see DESIGN.md §3 and tests/lighting).
THRESHOLDS: dict[tuple[Viewing, AmbientCondition], ThresholdDistribution] = {
    (Viewing.DIRECT, AmbientCondition.L1):
        ThresholdDistribution(6.18e-3, 7.2e-4, 4.1e-3, 6.9e-3),
    (Viewing.DIRECT, AmbientCondition.L2):
        ThresholdDistribution(5.44e-3, 8.4e-4, 4.1e-3, 6.9e-3),
    (Viewing.DIRECT, AmbientCondition.L3):
        ThresholdDistribution(5.00e-3, 9.7e-4, 3.1e-3, 5.9e-3),
    (Viewing.INDIRECT, AmbientCondition.L1):
        ThresholdDistribution(6.35e-2, 6.6e-3, 5.1e-2, 6.9e-2),
    (Viewing.INDIRECT, AmbientCondition.L2):
        ThresholdDistribution(6.00e-2, 9.7e-3, 4.1e-2, 6.9e-2),
    (Viewing.INDIRECT, AmbientCondition.L3):
        ThresholdDistribution(5.40e-2, 4.7e-3, 4.1e-2, 6.9e-2),
}

#: The resolutions each Table 2 half sweeps.
DIRECT_RESOLUTIONS = (0.003, 0.004, 0.005, 0.006, 0.007)
INDIRECT_RESOLUTIONS = (0.04, 0.05, 0.06, 0.07, 0.08)


@dataclass
class VolunteerPopulation:
    """A seeded panel of volunteers with per-condition thresholds."""

    n_volunteers: int = 20
    seed: int = 802157  # IEEE 802.15.7, in spirit
    thresholds: dict[tuple[Viewing, AmbientCondition], np.ndarray] = field(
        init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_volunteers < 1:
            raise ValueError("need at least one volunteer")
        rng = np.random.default_rng(self.seed)
        self.thresholds = {
            key: dist.sample(rng, self.n_volunteers)
            for key, dist in THRESHOLDS.items()
        }

    def percent_perceiving(self, resolution: float, viewing: Viewing,
                           condition: AmbientCondition) -> float:
        """Percentage of the panel that notices steps of ``resolution``."""
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        thresholds = self.thresholds[(viewing, condition)]
        return 100.0 * float(np.mean(thresholds <= resolution))

    def census(self, viewing: Viewing,
               resolutions: tuple[float, ...] | None = None
               ) -> dict[float, dict[AmbientCondition, float]]:
        """One half of Table 2: resolution → condition → % perceiving."""
        if resolutions is None:
            resolutions = (DIRECT_RESOLUTIONS if viewing is Viewing.DIRECT
                           else INDIRECT_RESOLUTIONS)
        return {
            res: {
                condition: self.percent_perceiving(res, viewing, condition)
                for condition in AmbientCondition
            }
            for res in resolutions
        }

    def safe_resolution(self, viewing: Viewing) -> float:
        """Largest step no volunteer notices in any ambient condition.

        For direct viewing this is the paper's tau_p = 0.003 result.
        """
        return float(min(t.min() for (v, _), t in self.thresholds.items()
                         if v is viewing))
