"""Physical illuminance at the work surface: lux, not just ratios.

The controller's Goal 1 is expressed in the paper as normalized
intensities (I_sum = I_led + I_amb).  This module grounds those numbers
in photometry so deployments can reason in lux: a Lambertian luminaire
of known luminous flux at a known mounting height produces a horizontal
illuminance at the desk; the dimming level scales it linearly (digital
dimming), and ambient daylight adds on top.

The default luminaire matches the prototype's Philips 4.7 W lamp
(~470 lm) at a 2.5 m ceiling, giving a few hundred lux directly below —
a realistic office desk contribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..phy.optics import OpticalFrontEnd


@dataclass(frozen=True)
class Luminaire:
    """A ceiling-mounted Lambertian luminaire.

    Attributes:
        luminous_flux_lm: Total flux at dimming level 1.0.
        semi_angle_deg: Half-power beam angle (shared with the comms
            front end: it is the same physical LED).
        height_m: Vertical distance from luminaire to work surface.
    """

    luminous_flux_lm: float = 470.0
    semi_angle_deg: float = 15.0
    height_m: float = 2.5

    def __post_init__(self) -> None:
        if self.luminous_flux_lm <= 0:
            raise ValueError("luminous_flux_lm must be positive")
        if not 0.0 < self.semi_angle_deg < 90.0:
            raise ValueError("semi_angle_deg must lie in (0, 90)")
        if self.height_m <= 0:
            raise ValueError("height_m must be positive")

    @property
    def lambertian_order(self) -> float:
        """Beam order m = -ln 2 / ln cos(φ_1/2)."""
        return -math.log(2.0) / math.log(math.cos(math.radians(self.semi_angle_deg)))

    @property
    def peak_intensity_cd(self) -> float:
        """On-axis luminous intensity: I0 = Φ (m+1) / 2π."""
        m = self.lambertian_order
        return self.luminous_flux_lm * (m + 1.0) / (2.0 * math.pi)

    def illuminance_lux(self, dimming: float,
                        radial_offset_m: float = 0.0) -> float:
        """Horizontal illuminance at the desk, ``offset`` from the axis.

        E = I0 · cos^m(φ) · cos(φ) / d² scaled by the dimming level,
        where φ is the angle off the luminaire axis and the extra
        cos(φ) projects onto the horizontal surface.
        """
        if not 0.0 <= dimming <= 1.0:
            raise ValueError("dimming must lie in [0, 1]")
        if radial_offset_m < 0:
            raise ValueError("radial_offset_m must be non-negative")
        d = math.hypot(self.height_m, radial_offset_m)
        cos_phi = self.height_m / d
        m = self.lambertian_order
        return dimming * self.peak_intensity_cd * cos_phi ** (m + 1) / d ** 2

    def dimming_for_lux(self, target_lux: float,
                        radial_offset_m: float = 0.0) -> float:
        """Dimming level producing ``target_lux`` (clipped to [0, 1])."""
        if target_lux < 0:
            raise ValueError("target_lux must be non-negative")
        full = self.illuminance_lux(1.0, radial_offset_m)
        if full <= 0:
            return 0.0
        return min(target_lux / full, 1.0)

    def comms_front_end(self, tx_power_w: float = 4.7,
                        **kwargs: float) -> OpticalFrontEnd:
        """The matching communications front end (same beam shape)."""
        return OpticalFrontEnd(tx_power_w=tx_power_w,
                               semi_angle_deg=self.semi_angle_deg,
                               **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class DeskIlluminance:
    """Total illuminance bookkeeping at one desk."""

    luminaire: Luminaire
    ambient_full_lux: float = 9760.0  # the paper's L1 upper band
    radial_offset_m: float = 0.0

    def total_lux(self, dimming: float, ambient: float) -> float:
        """LED contribution + daylight at the desk."""
        if not 0.0 <= ambient <= 1.0:
            raise ValueError("ambient must lie in [0, 1]")
        led = self.luminaire.illuminance_lux(dimming, self.radial_offset_m)
        return led + ambient * self.ambient_full_lux

    def dimming_for_total(self, target_lux: float, ambient: float) -> float:
        """Dimming level completing ``target_lux`` given daylight.

        The lux-domain analogue of the controller's Goal 1 (Eq. (5)).
        """
        if not 0.0 <= ambient <= 1.0:
            raise ValueError("ambient must lie in [0, 1]")
        needed = max(target_lux - ambient * self.ambient_full_lux, 0.0)
        return self.luminaire.dimming_for_lux(needed, self.radial_offset_m)
