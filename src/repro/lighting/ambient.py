"""Ambient light environments (Section 6.1, "Ambient light control").

The paper controls ambient light with an electrically driven window
blind: fixed position for the static scenario, a constant-speed 67 s
pull for the dynamic one (Fig. 19), with the caveat that real ambient
light "does not change perfectly linearly with the blind's position".

All profiles expose a normalized intensity in [0, 1] as a function of
time, where 1.0 is the paper's brightest condition (sunny day, blind at
the top, ceiling lights on — L1, 8900-9760 lux).  :data:`LUX_FULL_SCALE`
converts to lux for the user-study conditions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

#: Normalized 1.0 corresponds to the top of the paper's L1 band.
LUX_FULL_SCALE = 9760.0


class AmbientProfile(ABC):
    """A deterministic ambient-light trajectory."""

    @abstractmethod
    def intensity(self, t: float) -> float:
        """Normalized ambient level in [0, 1] at time ``t`` seconds."""

    def lux(self, t: float) -> float:
        """Ambient illuminance in lux at time ``t``."""
        return self.intensity(t) * LUX_FULL_SCALE

    def trace(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`intensity` over an array of times."""
        return np.asarray([self.intensity(float(t)) for t in np.asarray(times)])


@dataclass(frozen=True)
class StaticAmbient(AmbientProfile):
    """Blind fixed at one position (the static scenario)."""

    level: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise ValueError("ambient level must lie in [0, 1]")

    def intensity(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class BlindRampAmbient(AmbientProfile):
    """The 67-second constant-speed blind pull of Fig. 19.

    The blind position moves linearly, but the admitted light does not:
    a gentle S-shape (direct sun enters fastest mid-travel) plus a
    seeded, smooth perturbation reproduce the paper's observation that
    the throughput trace is not perfectly smooth.
    """

    start_level: float = 0.10
    end_level: float = 0.90
    duration_s: float = 67.0
    curvature: float = 0.25
    wobble: float = 0.03
    seed: int = 2017

    def __post_init__(self) -> None:
        for name, level in (("start_level", self.start_level),
                            ("end_level", self.end_level)):
            if not 0.0 <= level <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= self.curvature < 0.5:
            raise ValueError("curvature must lie in [0, 0.5)")
        if self.wobble < 0:
            raise ValueError("wobble must be non-negative")
        # Smooth perturbation: a few seeded sinusoids (deterministic,
        # differentiable, zero-mean).
        rng = np.random.default_rng(self.seed)
        phases = rng.uniform(0.0, 2.0 * math.pi, size=4)
        weights = rng.uniform(0.4, 1.0, size=4)
        object.__setattr__(self, "_phases", tuple(phases))
        object.__setattr__(self, "_weights", tuple(weights / weights.sum()))

    def intensity(self, t: float) -> float:
        x = min(max(t / self.duration_s, 0.0), 1.0)
        # S-curve: blend linear travel with a smoothstep.
        smooth = x * x * (3.0 - 2.0 * x)
        shaped = (1.0 - self.curvature) * x + self.curvature * smooth
        level = self.start_level + (self.end_level - self.start_level) * shaped
        if self.wobble and 0.0 < x < 1.0:
            ripple = sum(
                w * math.sin(2.0 * math.pi * (k + 1) * 0.8 * x + p)
                for k, (w, p) in enumerate(zip(self._weights, self._phases))
            )
            # Taper the ripple at both ends so the end levels are exact.
            level += self.wobble * ripple * math.sin(math.pi * x)
        return min(max(level, 0.0), 1.0)


@dataclass(frozen=True)
class CloudyDayAmbient(AmbientProfile):
    """Fast-moving clouds over a daylight arc (the Netherlands case).

    A slow sinusoidal daylight envelope modulated by seeded, smoothed
    cloud attenuation — the "weather changes super fast" scenario the
    paper motivates SmartVLC with.
    """

    day_length_s: float = 600.0
    peak_level: float = 0.9
    cloud_depth: float = 0.5
    cloud_time_scale_s: float = 20.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.day_length_s <= 0 or self.cloud_time_scale_s <= 0:
            raise ValueError("time scales must be positive")
        if not 0.0 < self.peak_level <= 1.0:
            raise ValueError("peak_level must lie in (0, 1]")
        if not 0.0 <= self.cloud_depth < 1.0:
            raise ValueError("cloud_depth must lie in [0, 1)")
        rng = np.random.default_rng(self.seed)
        n_knots = max(4, int(self.day_length_s / self.cloud_time_scale_s) + 2)
        object.__setattr__(self, "_knots", tuple(rng.uniform(0.0, 1.0, size=n_knots)))

    def _cloud_factor(self, t: float) -> float:
        """Cosine-interpolated cloud cover in [0, 1]."""
        knots = self._knots
        position = (t / self.cloud_time_scale_s) % (len(knots) - 1)
        i = int(position)
        frac = position - i
        w = 0.5 - 0.5 * math.cos(math.pi * frac)
        return knots[i] * (1.0 - w) + knots[i + 1] * w

    def intensity(self, t: float) -> float:
        x = min(max(t / self.day_length_s, 0.0), 1.0)
        daylight = self.peak_level * math.sin(math.pi * x)
        attenuation = 1.0 - self.cloud_depth * self._cloud_factor(t)
        return min(max(daylight * attenuation, 0.0), 1.0)


@dataclass(frozen=True)
class DaylightAmbient(AmbientProfile):
    """Piecewise solar-elevation daylight: night floor, sunrise-to-sunset
    solar arc, seeded cloud attenuation.

    The solar piece follows ``sin(elevation)`` raised to ``shape`` (a
    crude airmass correction that flattens the arc near the horizon),
    scaled between ``night_level`` and ``peak_level``.  Cloud cover is a
    cosine-interpolated knot sequence drawn from a
    :class:`numpy.random.SeedSequence` child, so scenario engines can
    derive per-room skies from one scenario seed without stream overlap.
    Outside ``[sunrise_s, sunset_s]`` the profile sits at the night
    floor, which makes the curve exactly piecewise: two constant night
    segments joined by the attenuated solar arc.
    """

    sunrise_s: float = 6.0 * 3600.0
    sunset_s: float = 18.0 * 3600.0
    peak_level: float = 0.85
    night_level: float = 0.02
    shape: float = 1.2
    cloud_depth: float = 0.15
    cloud_time_scale_s: float = 900.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sunrise_s < self.sunset_s:
            raise ValueError("need 0 <= sunrise_s < sunset_s")
        if not 0.0 <= self.night_level <= self.peak_level <= 1.0:
            raise ValueError("need 0 <= night_level <= peak_level <= 1")
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if not 0.0 <= self.cloud_depth < 1.0:
            raise ValueError("cloud_depth must lie in [0, 1)")
        if self.cloud_time_scale_s <= 0:
            raise ValueError("cloud_time_scale_s must be positive")
        ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(0,))
        rng = np.random.default_rng(ss)
        day_s = self.sunset_s - self.sunrise_s
        n_knots = max(4, int(day_s / self.cloud_time_scale_s) + 2)
        object.__setattr__(self, "_knots", tuple(rng.uniform(0.0, 1.0, size=n_knots)))

    def _cloud_factor(self, t: float) -> float:
        """Cosine-interpolated cloud cover in [0, 1]."""
        knots = self._knots
        position = (t / self.cloud_time_scale_s) % (len(knots) - 1)
        i = int(position)
        frac = position - i
        w = 0.5 - 0.5 * math.cos(math.pi * frac)
        return knots[i] * (1.0 - w) + knots[i + 1] * w

    def intensity(self, t: float) -> float:
        if t <= self.sunrise_s or t >= self.sunset_s:
            return self.night_level
        x = (t - self.sunrise_s) / (self.sunset_s - self.sunrise_s)
        solar = math.sin(math.pi * x) ** self.shape
        attenuation = 1.0 - self.cloud_depth * self._cloud_factor(t)
        level = self.night_level + (
            self.peak_level - self.night_level) * solar * attenuation
        return min(max(level, 0.0), 1.0)


@dataclass(frozen=True)
class ScheduledAmbient(AmbientProfile):
    """A base profile with timed override steps layered on top.

    Each step is ``(at_s, level)``: from ``at_s`` onward the ambient is
    pinned at ``level`` until the next step takes over.  A step whose
    level is ``None`` releases the override and returns to the base
    profile — so a blind pulled shut at noon and reopened an hour later
    is ``((noon, 0.05), (noon + 3600, None))``.  This is the DES-side
    counterpart of the fault layer's ambient steps: scenario compilers
    fold chaos overlays into plain step tuples here, keeping lighting
    free of any dependency on the resilience package.
    """

    base: AmbientProfile
    steps: tuple[tuple[float, float | None], ...] = ()

    def __post_init__(self) -> None:
        times = [at for at, _ in self.steps]
        if times != sorted(times):
            raise ValueError("step times must be non-decreasing")
        for _, level in self.steps:
            if level is not None and not 0.0 <= level <= 1.0:
                raise ValueError("step levels must lie in [0, 1] or be None")

    def intensity(self, t: float) -> float:
        active: float | None = None
        overridden = False
        for when, level in self.steps:
            if t >= when:
                active = level
                overridden = True
            else:
                break
        if overridden and active is not None:
            return active
        return self.base.intensity(t)


@dataclass(frozen=True)
class StepAmbient(AmbientProfile):
    """Piecewise-constant ambient light for controller tests."""

    steps: tuple[tuple[float, float], ...] = field(
        default=((0.0, 0.2),))

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("at least one step is required")
        times = [t for t, _ in self.steps]
        if times != sorted(times):
            raise ValueError("step times must be non-decreasing")
        if self.steps[0][0] > 0.0:
            raise ValueError("the first step must start at t <= 0")
        for _, level in self.steps:
            if not 0.0 <= level <= 1.0:
                raise ValueError("step levels must lie in [0, 1]")

    def intensity(self, t: float) -> float:
        level = self.steps[0][1]
        for when, value in self.steps:
            if t >= when:
                level = value
            else:
                break
        return level
