"""Energy accounting: the 'why' of smart lighting (Section 1).

Lighting consumes ~one fifth of the world's electricity; a smart
lighting system saves energy by dimming the LED whenever daylight
covers part of the illumination target.  With digital (duty-cycle)
dimming, electrical power is proportional to the dimming level, so the
energy of a run is the integral of the LED intensity trace.

:func:`energy_report` compares a controller trace against the dumb
baseline (LED pinned at the level needed with zero ambient light) —
the number a deployment would quote as "energy saved".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class EnergyReport:
    """Energy consumed over a run, smart vs always-on baseline."""

    duration_s: float
    smart_joules: float
    baseline_joules: float

    @property
    def saved_joules(self) -> float:
        """Energy avoided by tracking ambient light."""
        return self.baseline_joules - self.smart_joules

    @property
    def saving_fraction(self) -> float:
        """Fraction of the baseline energy saved."""
        if self.baseline_joules <= 0:
            return 0.0
        return self.saved_joules / self.baseline_joules

    @property
    def smart_average_w(self) -> float:
        """Mean electrical power of the smart run."""
        if self.duration_s <= 0:
            return 0.0
        return self.smart_joules / self.duration_s


def led_power_w(dimming: float, full_power_w: float) -> float:
    """Electrical power at a dimming level (duty-cycle dimming).

    Digital dimming switches the LED fully on for l of the time, so
    power scales linearly with l — unlike analog dimming, whose
    current/efficacy curve is non-linear (and shifts colour,
    Section 2.1).
    """
    if not 0.0 <= dimming <= 1.0:
        raise ValueError("dimming must lie in [0, 1]")
    if full_power_w < 0:
        raise ValueError("full_power_w must be non-negative")
    return dimming * full_power_w


def trace_energy_j(levels: Sequence[float], tick_s: float,
                   full_power_w: float) -> float:
    """Energy of a piecewise-constant dimming trace."""
    if tick_s <= 0:
        raise ValueError("tick_s must be positive")
    return sum(led_power_w(level, full_power_w) for level in levels) * tick_s


def energy_report(led_trace: Sequence[float], tick_s: float,
                  full_power_w: float = 4.7,
                  baseline_level: float = 1.0) -> EnergyReport:
    """Compare a smart-lighting run against a fixed-level baseline.

    ``baseline_level`` is what a non-smart installation would run at to
    guarantee the target illuminance with no daylight help (usually the
    full level the controller would command at zero ambient).
    """
    levels = list(led_trace)
    if not levels:
        raise ValueError("led_trace must not be empty")
    duration = len(levels) * tick_s
    smart = trace_energy_j(levels, tick_s, full_power_w)
    baseline = led_power_w(baseline_level, full_power_w) * duration
    return EnergyReport(duration, smart, baseline)
