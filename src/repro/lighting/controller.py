"""The smart-lighting control loop (Section 4.3).

Two goals, verbatim from the paper:

* **Goal 1** — keep the total illumination constant:
  I_sum = I_led + I_ambient.
* **Goal 2** — reach each new LED intensity without perceptible steps
  (Type-II flicker) and in as few adjustments as possible.

The controller closes the loop between an ambient profile, the
adaptation planner and the AMPPM designer: each tick it computes the
required LED intensity, walks there in flicker-free steps, and asks the
designer for the best super-symbol at the resulting dimming level
(LED duty cycle == normalized intensity — digital dimming, Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.adaptation import Adapter, AdaptationPlan
from ..core.ampdesign import AmppmDesign, AmppmDesigner
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..core.perception import perceived_step
from ..link.supervision import LinkState
from .ambient import AmbientProfile


@dataclass(frozen=True)
class ControllerSample:
    """The controller's state after one tick."""

    t: float
    ambient: float
    led: float
    adjustments: int
    design: AmppmDesign | None
    #: link-state label the tick was computed under ("up" when unsupervised)
    link_state: str = LinkState.UP.value

    @property
    def total(self) -> float:
        """I_sum = I_led + I_ambient at this tick."""
        return self.ambient + self.led

    @property
    def dimming(self) -> float:
        """The dimming level commanded to the modulator."""
        return self.led


@dataclass
class SmartLightingController:
    """Constant-illumination controller with flicker-free adaptation.

    Attributes:
        target_sum: Desired I_led + I_ambient (user preference).
        config: System parameters (tau_p, designer bounds, ...).
        designer: AMPPM designer serving dimming requests; None runs
            the controller lighting-only (no communication).
        use_perception_domain: SmartVLC stepping when True, the
            fixed-measured-step existing method when False.
        deadband: Ignore required-intensity changes smaller than this
            (perceived domain), modelling the paper's concern about
            needless re-designs.
        ambient_max: Brightest ambient level the deployment expects;
            fixes the darkest LED intensity of the operating range,
            which is where the existing method must size its fixed
            measured-domain step to stay flicker-safe.
        degraded_error_margin: Error-probability inflation used to
            build the conservative fallback designer consulted while
            the supervised link is DEGRADED — the envelope then prefers
            shorter, more redundant super-symbols.
    """

    target_sum: float = 1.0
    config: SystemConfig = field(default_factory=SystemConfig)
    designer: AmppmDesigner | None = None
    use_perception_domain: bool = True
    deadband: float = 0.0
    initial_led: float | None = None
    ambient_max: float = 0.90
    degraded_error_margin: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_sum <= 2.0:
            raise ValueError("target_sum must lie in (0, 2]")
        if self.deadband < 0:
            raise ValueError("deadband must be non-negative")
        if not 0.0 <= self.ambient_max <= 1.0:
            raise ValueError("ambient_max must lie in [0, 1]")
        if self.degraded_error_margin < 1.0:
            raise ValueError("degraded_error_margin must be >= 1")
        led0 = (self.initial_led if self.initial_led is not None
                else min(self.target_sum, 1.0))
        self._adapter = Adapter(
            tau_perceived=self.config.tau_perceived,
            intensity=led0,
            use_perception_domain=self.use_perception_domain,
            range_min=self.required_led(self.ambient_max),
        )
        self._last_design: AmppmDesign | None = None
        self._last_designed_level: float | None = None
        self._conservative: AmppmDesigner | None = None
        self._last_cons_design: AmppmDesign | None = None
        self._last_cons_level: float | None = None
        self._last_plan: AdaptationPlan | None = None

    @property
    def led_intensity(self) -> float:
        """Current measured-domain LED intensity."""
        return self._adapter.intensity

    @property
    def adjustments(self) -> int:
        """Cumulative brightness adjustments (Fig. 19(c) y-axis)."""
        return self._adapter.adjustments

    def required_led(self, ambient: float) -> float:
        """Goal 1: the LED intensity that completes the target sum."""
        return min(max(self.target_sum - ambient, 0.0), 1.0)

    @property
    def last_plan(self) -> AdaptationPlan | None:
        """The adaptation plan executed by the latest tick (if any).

        ``None`` when the latest tick stayed inside the deadband —
        illumination did not move, so there is no trajectory to audit.
        """
        return self._last_plan

    def tick(self, t: float, ambient: float,
             link_state: LinkState = LinkState.UP) -> ControllerSample:
        """One control step at time ``t`` with the given ambient level.

        ``link_state`` is the supervised link's health (from a
        :class:`~repro.link.supervision.LinkSupervisor`): DEGRADED
        swaps in the conservative designer, DOWN/PROBING suspends
        communication entirely (``design=None``) while illumination —
        and its flicker guarantee — carries on unchanged.
        """
        required = self.required_led(ambient)
        self._last_plan = None
        if perceived_step(self._adapter.intensity, required) > self.deadband:
            self._last_plan = self._adapter.retarget(required)
        if link_state in (LinkState.DOWN, LinkState.PROBING):
            design = None  # illumination-only fallback
        elif link_state is LinkState.DEGRADED:
            design = self.conservative_design(self._adapter.intensity)
        else:
            design = self._design_for(self._adapter.intensity)
        return ControllerSample(
            t=t,
            ambient=ambient,
            led=self._adapter.intensity,
            adjustments=self._adapter.adjustments,
            design=design,
            link_state=link_state.value,
        )

    def run(self, profile: AmbientProfile, duration_s: float,
            tick_s: float = 1.0) -> list[ControllerSample]:
        """Drive the controller over an ambient profile."""
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        samples = []
        t = 0.0
        while t <= duration_s + 1e-9:
            samples.append(self.tick(t, profile.intensity(t)))
            t += tick_s
        return samples

    def _design_for(self, level: float) -> AmppmDesign | None:
        if self.designer is None:
            return None
        # Re-design only when the level actually moved (Goal 2's
        # "minimize the overhead of finding the optimal patterns").
        if (self._last_designed_level is not None
                and abs(level - self._last_designed_level) < 1e-12):
            return self._last_design
        self._last_design = self.designer.design_clamped(level)
        self._last_designed_level = level
        return self._last_design

    def _conservative_designer(self) -> AmppmDesigner | None:
        if self.designer is None:
            return None
        if self._conservative is None:
            errors = SlotErrorModel.from_config(self.config).scaled(
                self.degraded_error_margin)
            try:
                self._conservative = AmppmDesigner(self.config,
                                                   errors=errors)
            except ValueError:
                # Margin prunes every candidate: degrade to the normal
                # designer rather than losing the link entirely.
                self._conservative = self.designer
        return self._conservative

    def conservative_design(self, level: float) -> AmppmDesign | None:
        """The DEGRADED-mode design at a dimming level (also for probes).

        Uses a designer whose slot error model is inflated by
        ``degraded_error_margin``, so the SER bound admits only
        shorter, more redundant super-symbols — the graceful step-down
        a supervised link takes before giving up.
        """
        designer = self._conservative_designer()
        if designer is None:
            return None
        if (self._last_cons_level is not None
                and abs(level - self._last_cons_level) < 1e-12):
            return self._last_cons_design
        self._last_cons_design = designer.design_clamped(level)
        self._last_cons_level = level
        return self._last_cons_design
