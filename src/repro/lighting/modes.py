"""Day/night mode switching: SmartVLC by day, DarkLight by night.

Section 7 of the paper: "When illumination is required, SmartVLC can be
applied and when illumination is not required (e.g., at night),
DarkLight can then be applied instead."  The :class:`DayNightManager`
implements that hand-over: while the lighting controller demands an LED
level inside AMPPM's operating range, AMPPM carries the data; when the
required level falls below the perceptibility floor (lights off), the
link drops into DarkLight's imperceptible single-pulse mode instead of
going silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..baselines.base import SchemeDesign
from ..baselines.darklight import DarkLight
from ..core.params import SystemConfig
from ..schemes import AmppmScheme


class LinkMode(Enum):
    """Which modulation currently carries the data."""

    SMARTVLC = "smartvlc"
    DARKLIGHT = "darklight"


@dataclass(frozen=True)
class ModeDecision:
    """Outcome of one mode-selection step."""

    mode: LinkMode
    design: SchemeDesign
    required_dimming: float

    @property
    def data_rate_factor(self) -> float:
        """Bits per slot of the chosen design (ideal channel)."""
        return self.design.normalized_rate()


@dataclass
class DayNightManager:
    """Chooses and configures the modulation for a required LED level.

    Attributes:
        config: System parameters.
        night_threshold: Below this required dimming level the room is
            considered "lights off" and DarkLight takes over.  The
            default is AMPPM's own lower supported bound: SmartVLC
            serves everything it can, DarkLight covers the rest.
        darklight_n: Symbol length for night mode (darkness 1/N).
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    night_threshold: float | None = None
    darklight_n: int = 512

    def __post_init__(self) -> None:
        self._smartvlc = AmppmScheme(self.config)
        self._darklight = DarkLight(self.config, n_slots=self.darklight_n)
        if self.night_threshold is None:
            self.night_threshold = self._smartvlc.supported_range[0]
        if not 0.0 < self.night_threshold < 1.0:
            raise ValueError("night_threshold must lie in (0, 1)")
        self._switches = 0
        self._last_mode: LinkMode | None = None

    @property
    def mode_switches(self) -> int:
        """Number of SmartVLC <-> DarkLight hand-overs so far."""
        return self._switches

    def select(self, required_dimming: float) -> ModeDecision:
        """Pick the mode and design for a required LED level.

        ``required_dimming`` may be 0 (lights fully off): DarkLight
        still carries data at its imperceptible duty cycle.
        """
        if not 0.0 <= required_dimming <= 1.0:
            raise ValueError("required_dimming must lie in [0, 1]")
        if required_dimming < self.night_threshold:
            mode = LinkMode.DARKLIGHT
            design: SchemeDesign = self._darklight.darkest_design()
        else:
            mode = LinkMode.SMARTVLC
            design = self._smartvlc.design_clamped(required_dimming)
        if self._last_mode is not None and mode is not self._last_mode:
            self._switches += 1
        self._last_mode = mode
        return ModeDecision(mode, design, required_dimming)
