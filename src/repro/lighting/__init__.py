"""Smart-lighting substrate: ambient light, controller, flicker, user study."""

from .ambient import (
    LUX_FULL_SCALE,
    AmbientProfile,
    BlindRampAmbient,
    CloudyDayAmbient,
    DaylightAmbient,
    ScheduledAmbient,
    StaticAmbient,
    StepAmbient,
)
from .controller import ControllerSample, SmartLightingController
from .energy import EnergyReport, energy_report, led_power_w, trace_energy_j
from .flicker import (
    Type1Report,
    Type2Report,
    max_constant_run,
    type1_perceptual,
    type1_structural_ok,
    type2_analyze,
)
from .illuminance import DeskIlluminance, Luminaire
from .modes import DayNightManager, LinkMode, ModeDecision
from .userstudy import (
    DIRECT_RESOLUTIONS,
    INDIRECT_RESOLUTIONS,
    THRESHOLDS,
    AmbientCondition,
    ThresholdDistribution,
    Viewing,
    VolunteerPopulation,
)

__all__ = [
    "AmbientCondition",
    "AmbientProfile",
    "BlindRampAmbient",
    "CloudyDayAmbient",
    "ControllerSample",
    "DIRECT_RESOLUTIONS",
    "DayNightManager",
    "DaylightAmbient",
    "DeskIlluminance",
    "EnergyReport",
    "LinkMode",
    "ModeDecision",
    "INDIRECT_RESOLUTIONS",
    "LUX_FULL_SCALE",
    "Luminaire",
    "ScheduledAmbient",
    "SmartLightingController",
    "StaticAmbient",
    "StepAmbient",
    "THRESHOLDS",
    "ThresholdDistribution",
    "Type1Report",
    "Type2Report",
    "Viewing",
    "VolunteerPopulation",
    "energy_report",
    "led_power_w",
    "max_constant_run",
    "trace_energy_j",
    "type1_perceptual",
    "type1_structural_ok",
    "type2_analyze",
]
