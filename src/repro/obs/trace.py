"""Chrome trace-event JSON export for recorded span trees.

The trace-event format (the ``chrome://tracing`` / Perfetto JSON
schema) is the lingua franca of timeline viewers: complete events
(``ph: "X"``) are drawn as slices, metadata events (``ph: "M"``) name
processes, and flow events (``ph: "s"`` / ``ph: "f"``) draw arrows
between them.  :func:`write_chrome_trace` renders a telemetry
session's spans in exactly those terms:

* spans recorded in the parent process land on pid
  :data:`MAIN_PID`;
* spans absorbed from sweep-shard workers (they carry a ``shard``
  attribute, see :meth:`repro.obs.spans.SpanRecorder.absorb`) land on
  one pid per shard, each named ``sweep shard <k>``;
* every shard's root span gets a flow arrow from the parent timeline,
  so the fan-out/absorb structure is visible as drawn edges.

Timestamps are microseconds relative to the session epoch, ``dur`` is
the span duration (zero-duration spans render as zero-width slices —
legal in the schema).  Unclosed spans are by construction absent from
the recorder, so a trace exported mid-run simply lacks them.
:func:`validate_trace` checks a payload against the schema subset this
module emits; the tests (and the CLI, cheaply) run every export
through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .spans import SpanRecord

MAIN_PID = 1
"""The pid carrying spans recorded in the parent process."""

_SHARD_PID_BASE = 2
_ALLOWED_PHASES = {"X", "M", "s", "f"}


def _shard_of(record: SpanRecord) -> int | None:
    shard = record.get("shard")
    return int(shard) if shard is not None else None


def trace_events(records: Iterable[SpanRecord]) -> list[dict[str, Any]]:
    """Span records as a trace-event list (see the module docstring)."""
    records = list(records)
    shards = sorted({s for s in map(_shard_of, records) if s is not None})
    pid_of = {shard: _SHARD_PID_BASE + i for i, shard in enumerate(shards)}

    events: list[dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": MAIN_PID, "tid": 0,
        "ts": 0, "args": {"name": "repro main"},
    }]
    for shard in shards:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid_of[shard],
            "tid": 0, "ts": 0, "args": {"name": f"sweep shard {shard}"},
        })

    by_id = {r.span_id: r for r in records}
    for record in records:
        shard = _shard_of(record)
        pid = MAIN_PID if shard is None else pid_of[shard]
        args = {k: v for k, v in record.attrs}
        args["span_id"] = record.span_id
        events.append({
            "ph": "X", "name": record.name, "cat": "repro",
            "pid": pid, "tid": 0,
            "ts": round(record.start_s * 1e6, 3),
            "dur": round(max(record.duration_s, 0.0) * 1e6, 3),
            "args": args,
        })
        if shard is None:
            continue
        parent = (by_id.get(record.parent_id)
                  if record.parent_id is not None else None)
        if parent is not None and _shard_of(parent) is not None:
            continue
        # A shard root: draw the fan-out arrow from the parent timeline
        # (the stitched enclosing span when one exists) to the shard.
        flow_id = f"shard-{shard}-{record.span_id}"
        ts = round(record.start_s * 1e6, 3)
        events.append({"ph": "s", "name": "sweep.fanout", "cat": "repro",
                       "id": flow_id, "pid": MAIN_PID, "tid": 0, "ts": ts})
        events.append({"ph": "f", "bp": "e", "name": "sweep.fanout",
                       "cat": "repro", "id": flow_id, "pid": pid, "tid": 0,
                       "ts": ts})
    return events


def chrome_trace(session) -> dict[str, Any]:
    """A session's spans as a Chrome trace-event JSON object."""
    return {
        "traceEvents": trace_events(session.spans.records),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.trace"},
    }


def validate_trace(payload: Any) -> None:
    """Raise ``ValueError`` unless ``payload`` fits the emitted schema.

    Checks the object form (``traceEvents`` list), the per-event
    required keys, phase-specific fields (``X`` needs a non-negative
    ``dur``; flow events need an ``id``) and timestamp sanity.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace payload must be an object with traceEvents")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        for key in ("ph", "name", "pid", "tid", "ts"):
            if key not in event:
                raise ValueError(f"{where}: missing {key!r}")
        if event["ph"] not in _ALLOWED_PHASES:
            raise ValueError(f"{where}: unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{where}: complete event needs non-negative dur")
        if event["ph"] in ("s", "f") and "id" not in event:
            raise ValueError(f"{where}: flow event needs an id")


def write_chrome_trace(session, path: str | Path) -> Path:
    """Write a session's spans as Chrome trace-event JSON.

    The produced file loads directly in ``chrome://tracing`` and
    https://ui.perfetto.dev.  The payload is validated before writing,
    so a bug here fails loudly instead of producing a file the viewer
    silently rejects.
    """
    payload = chrome_trace(session)
    validate_trace(payload)
    path = Path(path)
    path.write_text(json.dumps(payload, sort_keys=True) + "\n")
    return path
