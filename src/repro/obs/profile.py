"""Hot-path profiles aggregated from recorded span trees.

A span dump answers "what happened when"; a profile answers "where did
the time go".  :class:`ProfileSession` folds the flat
:class:`~repro.obs.spans.SpanRecord` list of a telemetry session into
per-label totals:

* **inclusive** time — the summed duration of every span with that
  label (a label nested inside itself counts each level, as in any
  tree profiler);
* **exclusive** (self) time — inclusive time minus the time spent in
  recorded child spans, clamped at zero per span so timing jitter in
  children can never produce negative self-time.

Spans whose parent is missing from the record set (an unclosed
enclosing span at export time, or a trimmed dump) are treated as
roots, so a partial trace still profiles cleanly.  The top-N
``render`` is what ``repro run --profile`` and ``repro stats
--profile`` print: the "phy waveform vs codec vs DES kernel vs merge"
breakdown of any instrumented run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .spans import SpanRecord


@dataclass(frozen=True)
class ProfileEntry:
    """Aggregate timing of one span label across a whole session."""

    name: str
    count: int
    inclusive_s: float
    exclusive_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        """Mean inclusive duration per span."""
        return self.inclusive_s / self.count if self.count else 0.0


def aggregate_spans(records: Iterable[SpanRecord]) -> list[ProfileEntry]:
    """Fold span records into per-label entries, hottest self-time first."""
    records = list(records)
    known = {r.span_id for r in records}
    child_time: dict[int, float] = {}
    for record in records:
        if record.parent_id is not None and record.parent_id in known:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration_s)

    totals: dict[str, list[float]] = {}
    for record in records:
        self_time = max(0.0, record.duration_s
                        - child_time.get(record.span_id, 0.0))
        cells = totals.get(record.name)
        if cells is None:
            totals[record.name] = [1, record.duration_s, self_time,
                                   record.duration_s, record.duration_s]
        else:
            cells[0] += 1
            cells[1] += record.duration_s
            cells[2] += self_time
            cells[3] = min(cells[3], record.duration_s)
            cells[4] = max(cells[4], record.duration_s)

    entries = [ProfileEntry(name=name, count=int(c[0]), inclusive_s=c[1],
                            exclusive_s=c[2], min_s=c[3], max_s=c[4])
               for name, c in totals.items()]
    entries.sort(key=lambda e: (-e.exclusive_s, e.name))
    return entries


class ProfileSession:
    """The per-label time breakdown of one recorded span set."""

    __slots__ = ("entries", "total_s", "n_spans")

    def __init__(self, entries: Sequence[ProfileEntry], total_s: float,
                 n_spans: int):
        self.entries = list(entries)
        self.total_s = total_s
        self.n_spans = n_spans

    @classmethod
    def from_records(cls, records: Iterable[SpanRecord]) -> "ProfileSession":
        """Profile a flat span-record list (order irrelevant)."""
        records = list(records)
        known = {r.span_id for r in records}
        total = sum(r.duration_s for r in records
                    if r.parent_id is None or r.parent_id not in known)
        return cls(aggregate_spans(records), total, len(records))

    @classmethod
    def from_session(cls, session) -> "ProfileSession":
        """Profile the spans of a :class:`~repro.obs.runtime.Telemetry`."""
        return cls.from_records(session.spans.records)

    def hot(self, n: int = 10) -> list[ProfileEntry]:
        """The top-``n`` labels by exclusive self-time."""
        return self.entries[:max(0, n)]

    def render(self, top: int = 15) -> str:
        """The hot-path table as aligned terminal text."""
        lines = [f"profile: {len(self.entries)} labels, "
                 f"{self.n_spans} spans, total {self.total_s:.3f} s"]
        if not self.entries:
            return lines[0]
        shown = self.hot(top)
        width = max(4, max(len(e.name) for e in shown))
        lines.append(f"  {'name':<{width}}  {'count':>6}  {'incl ms':>10}  "
                     f"{'excl ms':>10}  {'excl %':>7}  {'mean ms':>10}")
        for entry in shown:
            share = (entry.exclusive_s / self.total_s * 100.0
                     if self.total_s > 0 else 0.0)
            lines.append(
                f"  {entry.name:<{width}}  {entry.count:>6}  "
                f"{entry.inclusive_s * 1e3:>10.2f}  "
                f"{entry.exclusive_s * 1e3:>10.2f}  "
                f"{share:>6.1f}%  {entry.mean_s * 1e3:>10.2f}")
        if len(self.entries) > len(shown):
            lines.append(f"  ... {len(self.entries) - len(shown)} more labels")
        return "\n".join(lines)
