"""Unified telemetry: metrics, spans, run manifests, exporters.

``repro.obs`` is the observability subsystem threaded through the
whole stack — the batched Monte-Carlo engine, the waveform path, the
DES kernel, the MAC, the sweep runner and every experiment harness.
It is zero-dependency and **off by default**: without an active
session, :func:`metrics` returns a shared null registry and
:func:`span` a shared no-op context manager, so the permanent
instrumentation costs one attribute call in the hot loops.

Quickstart::

    from repro.obs import telemetry_session, write_telemetry_jsonl
    from repro.experiments import run_experiment

    with telemetry_session() as session:
        result = run_experiment("fig16")
    write_telemetry_jsonl(session, "telemetry.jsonl")
    print(result.manifest.summary())        # provenance of the figure

Determinism contract: telemetry only *observes*.  Wall-clock values
live exclusively in spans, manifests and exported telemetry files —
never in result values, journals, or determinism digests — so
enabling a session cannot change any golden-seed artefact.
"""

from .bench import (
    BenchRecord,
    BenchRunner,
    Regression,
    RegressionPolicy,
    append_history,
    detect_regressions,
    deterministic_timer,
    group_by_name,
    last_run,
    load_history,
    regression_threshold,
)
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    read_telemetry_jsonl,
    render_prometheus,
    render_text,
    telemetry_rows,
    write_telemetry_jsonl,
)
from .manifest import RunManifest, config_digest, write_manifest
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge,
)
from .profile import ProfileEntry, ProfileSession, aggregate_spans
from .runtime import (
    Telemetry,
    active,
    enabled,
    metrics,
    record_manifest,
    span,
    telemetry_session,
)
from .spans import NULL_SPAN, SpanRecord, SpanRecorder, active_span, span_tree
from .trace import (
    chrome_trace,
    trace_events,
    validate_trace,
    write_chrome_trace,
)

__all__ = [
    "BenchRecord",
    "BenchRunner",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "ProfileEntry",
    "ProfileSession",
    "Regression",
    "RegressionPolicy",
    "RunManifest",
    "SpanRecord",
    "SpanRecorder",
    "Telemetry",
    "active",
    "active_span",
    "aggregate_spans",
    "append_history",
    "chrome_trace",
    "config_digest",
    "detect_regressions",
    "deterministic_timer",
    "enabled",
    "group_by_name",
    "last_run",
    "load_history",
    "merge",
    "metrics",
    "read_telemetry_jsonl",
    "record_manifest",
    "regression_threshold",
    "render_prometheus",
    "render_text",
    "span",
    "span_tree",
    "telemetry_rows",
    "telemetry_session",
    "trace_events",
    "validate_trace",
    "write_chrome_trace",
    "write_manifest",
    "write_telemetry_jsonl",
]
