"""Unified telemetry: metrics, spans, run manifests, exporters.

``repro.obs`` is the observability subsystem threaded through the
whole stack — the batched Monte-Carlo engine, the waveform path, the
DES kernel, the MAC, the sweep runner and every experiment harness.
It is zero-dependency and **off by default**: without an active
session, :func:`metrics` returns a shared null registry and
:func:`span` a shared no-op context manager, so the permanent
instrumentation costs one attribute call in the hot loops.

Quickstart::

    from repro.obs import telemetry_session, write_telemetry_jsonl
    from repro.experiments import run_experiment

    with telemetry_session() as session:
        result = run_experiment("fig16")
    write_telemetry_jsonl(session, "telemetry.jsonl")
    print(result.manifest.summary())        # provenance of the figure

Determinism contract: telemetry only *observes*.  Wall-clock values
live exclusively in spans, manifests and exported telemetry files —
never in result values, journals, or determinism digests — so
enabling a session cannot change any golden-seed artefact.
"""

from .export import (
    read_telemetry_jsonl,
    render_prometheus,
    render_text,
    telemetry_rows,
    write_telemetry_jsonl,
)
from .manifest import RunManifest, config_digest, write_manifest
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge,
)
from .runtime import (
    Telemetry,
    active,
    enabled,
    metrics,
    record_manifest,
    span,
    telemetry_session,
)
from .spans import NULL_SPAN, SpanRecord, SpanRecorder, span_tree

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "RunManifest",
    "SpanRecord",
    "SpanRecorder",
    "Telemetry",
    "active",
    "config_digest",
    "enabled",
    "merge",
    "metrics",
    "read_telemetry_jsonl",
    "record_manifest",
    "render_prometheus",
    "render_text",
    "span",
    "span_tree",
    "telemetry_rows",
    "telemetry_session",
    "write_manifest",
    "write_telemetry_jsonl",
]
