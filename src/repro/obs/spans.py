"""Contextvar-based span tracing with monotonic timings.

A *span* is one timed region of work — ``with span("batch.ser"): ...``
— identified by a name plus optional attributes.  Spans nest: the
contextvar holding the active span makes the enclosing ``with`` block
the parent of any span opened inside it, across generator suspensions
and (if it ever comes to that) asyncio tasks, without any explicit
threading of a tracer object through call signatures.

Timings come from :func:`time.perf_counter` and are *relative to the
recorder's epoch* (its construction instant), so a trace is a set of
``(start_s, duration_s)`` intervals starting near zero.  Wall-clock
values live only here and in the exported telemetry files — results,
journals and their digests never see them, which is what keeps the
golden-seed determinism contract intact.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Mapping

_ACTIVE_SPAN: ContextVar["_OpenSpan | None"] = ContextVar(
    "repro_obs_active_span", default=None)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, position in the tree, and timing."""

    span_id: int
    parent_id: int | None
    name: str
    depth: int
    start_s: float
    duration_s: float
    attrs: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """An attribute value by key (``default`` when absent)."""
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        """A flat dict form (for JSONL export)."""
        row: dict[str, Any] = {
            "span_id": self.span_id, "parent_id": self.parent_id,
            "name": self.name, "depth": self.depth,
            "start_s": self.start_s, "duration_s": self.duration_s,
        }
        if self.attrs:
            row["attrs"] = dict(self.attrs)
        return row


class _OpenSpan:
    """Book-keeping for a span that has been entered but not exited."""

    __slots__ = ("span_id", "parent", "name", "depth", "start", "attrs",
                 "recorder", "_token")

    def __init__(self, recorder: "SpanRecorder", name: str,
                 attrs: dict[str, Any]):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent: _OpenSpan | None = None
        self.depth = 0
        self.start = 0.0
        self._token = None

    def __enter__(self) -> "_OpenSpan":
        recorder = self.recorder
        self.span_id = recorder._next_id
        recorder._next_id += 1
        self.parent = _ACTIVE_SPAN.get()
        if self.parent is not None and self.parent.recorder is not recorder:
            # A span from another recorder (e.g. the session's, around a
            # standalone recorder) cannot be a parent: parent links must
            # stay within one recorder's id space, or absorb() would
            # resolve them against the wrong sequence.
            self.parent = None
        self.depth = 0 if self.parent is None else self.parent.depth + 1
        self._token = _ACTIVE_SPAN.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self.start
        _ACTIVE_SPAN.reset(self._token)
        self.recorder._finished.append(SpanRecord(
            span_id=self.span_id,
            parent_id=None if self.parent is None else self.parent.span_id,
            name=self.name,
            depth=self.depth,
            start_s=self.start - self.recorder.epoch,
            duration_s=duration,
            attrs=tuple(sorted(self.attrs.items())),
        ))
        return False


class SpanRecorder:
    """Collects finished spans for one telemetry session."""

    __slots__ = ("epoch", "_next_id", "_finished")

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._next_id = 0
        self._finished: list[SpanRecord] = []

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """A context manager timing one region under the active parent."""
        return _OpenSpan(self, name, attrs)

    @property
    def records(self) -> list[SpanRecord]:
        """Every finished span, in completion order."""
        return list(self._finished)

    def __len__(self) -> int:
        return len(self._finished)

    def payload(self) -> dict[str, Any]:
        """The recorder's spans as a picklable shard payload.

        The inverse is :meth:`absorb` in another process's recorder;
        the ``epoch`` rides along so the absorber can rebase the
        timings onto its own timeline (``perf_counter`` reads the same
        monotonic clock in every process of a machine).
        """
        return {"epoch": self.epoch,
                "records": [r.as_dict() for r in self._finished]}

    def absorb(self, payload: Mapping[str, Any], shard: int | None = None,
               parent_id: int | None = None,
               base_depth: int = 0) -> list[SpanRecord]:
        """Fold a :meth:`payload` from another process into this recorder.

        Span ids are remapped onto this recorder's sequence (parent
        links inside the payload follow), start times are rebased from
        the payload's epoch onto this recorder's, and ``shard`` (when
        given) is stamped on every absorbed span's attributes — the
        marker the Chrome-trace exporter uses to give each shard its
        own pid.  Roots of the payload (and orphans whose parent is
        missing from it) are stitched under ``parent_id`` at
        ``base_depth``, so absorbed shard trees nest inside the span
        that ran the sweep.  Returns the absorbed records.
        """
        rows = list(payload.get("records", ()))
        offset = float(payload.get("epoch", self.epoch)) - self.epoch
        ids = {row["span_id"]: self._next_id + i
               for i, row in enumerate(rows)}
        self._next_id += len(rows)
        absorbed: list[SpanRecord] = []
        for row in rows:
            attrs = dict(row.get("attrs", {}))
            if shard is not None:
                attrs["shard"] = shard
            old_parent = row.get("parent_id")
            new_parent = (ids.get(old_parent, parent_id)
                          if old_parent is not None else parent_id)
            record = SpanRecord(
                span_id=ids[row["span_id"]],
                parent_id=new_parent,
                name=row["name"],
                depth=row.get("depth", 0) + base_depth,
                start_s=row["start_s"] + offset,
                duration_s=row["duration_s"],
                attrs=tuple(sorted(attrs.items())),
            )
            self._finished.append(record)
            absorbed.append(record)
        return absorbed


def active_span() -> "_OpenSpan | None":
    """The innermost open span of the current context, or None."""
    return _ACTIVE_SPAN.get()


class NullSpan:
    """The telemetry-off span: a shared, reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        """No-op."""
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op."""
        return False


NULL_SPAN = NullSpan()
"""Shared instance returned by :func:`repro.obs.span` when disabled."""


def span_tree(records: list[SpanRecord]) -> list[tuple[SpanRecord, list]]:
    """Nest finished spans into ``(record, children)`` forests.

    Roots (and siblings) are ordered by start time; a record whose
    parent is missing from ``records`` is treated as a root.
    """
    by_id = {r.span_id: (r, []) for r in records}
    roots: list[tuple[SpanRecord, list]] = []
    for record in sorted(records, key=lambda r: (r.start_s, r.span_id)):
        node = by_id[record.span_id]
        parent = (by_id.get(record.parent_id)
                  if record.parent_id is not None else None)
        if parent is None:
            roots.append(node)
        else:
            parent[1].append(node)
    return roots
