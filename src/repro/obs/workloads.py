"""The built-in workload set behind ``repro bench run``.

Each workload is a zero-argument callable exercising one hot path of
the reproduction — the AMPPM designer, the symbol codec, the framing
path, the batched Monte-Carlo engine and the DES multicell simulator —
sized to finish in well under a second so a full gated run stays
interactive.  Expensive setup that is not the thing being measured
(scheme designs, transmitter construction) happens once while the
registry is built, outside the timed region.

Workload names are the keys of ``BENCH_HISTORY.jsonl``: renaming one
orphans its history, so treat them as a stable public surface.

Imports are deliberately local to :func:`bench_workloads` — this
module lives in ``repro.obs``, which the simulation layers themselves
import, and module-level imports of ``repro.sim``/``repro.net`` would
be circular.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..core.params import SystemConfig


def bench_workloads(config: SystemConfig | None = None
                    ) -> Dict[str, Callable[[], Any]]:
    """Name -> zero-arg callable, in the order ``bench run`` executes."""
    import numpy as np

    from ..core import (
        AmppmDesigner,
        SlotErrorModel,
        SymbolPattern,
        decode_symbol,
        encode_symbol,
        slope_walk_envelope,
    )
    from ..link import Transmitter
    from ..net.multicell import default_network
    from ..schemes import AmppmScheme
    from ..sim.batch import BatchMonteCarloValidator

    config = config if config is not None else SystemConfig()
    design = AmppmScheme(config).design(0.5)
    transmitter = Transmitter(config)
    payload = bytes(range(256)) * 2
    validator = BatchMonteCarloValidator(config=config)
    pattern = SymbolPattern(30, 15)
    errors = SlotErrorModel(2e-3, 2e-3)

    def design_envelope():
        designer = AmppmDesigner(config)
        return slope_walk_envelope(designer.candidates,
                                   SlotErrorModel(9e-5, 8e-5))

    def codec_roundtrip():
        value = 0
        for i in range(400):
            codeword = encode_symbol(2**40 + i, 50, 25)
            value ^= decode_symbol(codeword, 25)
        return value

    def frame_encode():
        return transmitter.encode_frame(payload, design)

    def batch_ser():
        return validator.symbol_error_rate(
            pattern, errors, np.random.default_rng(7), n_symbols=20_000)

    def des_multicell():
        return default_network(config, rows=2, cols=2, n_nodes=3,
                               seed=29).run(5.0)

    def des_fleet():
        return default_network(config, rows=8, cols=8, n_nodes=32,
                               seed=11, regions=4).run(2.0)

    def serve_adapt():
        import asyncio

        from ..serve import ControlPlane, LoadProfile, ServeConfig, \
            run_loadgen

        async def fleet():
            plane = ControlPlane(ServeConfig(coalesce_window_s=0.002),
                                 config=config)
            await plane.start()
            try:
                return await run_loadgen(
                    plane.host, plane.port,
                    LoadProfile(clients=16, requests_per_client=4, seed=3))
            finally:
                await plane.stop()

        return asyncio.run(fleet())

    def scenario_smoke():
        from ..scenarios import SMOKE_SCENARIO, ScenarioRunner, \
            shipped_scenarios

        run = ScenarioRunner(shipped_scenarios()[SMOKE_SCENARIO],
                             config=config).run()
        assert run.report.passed, run.report.violations
        return run.report.journal_digest

    def fuzz_smoke():
        from ..fuzz import CampaignConfig, run_campaign

        report = run_campaign(CampaignConfig(
            seed=0, budget=24, oracles=("codec", "roundtrip", "design")))
        assert report.clean, [f.detail for f in report.findings]
        return report.digest

    return {
        "design.envelope": design_envelope,
        "codec.roundtrip": codec_roundtrip,
        "frame.encode": frame_encode,
        "batch.ser": batch_ser,
        "des.multicell": des_multicell,
        "des.fleet": des_fleet,
        "serve.adapt": serve_adapt,
        "scenario.smoke": scenario_smoke,
        "fuzz.smoke": fuzz_smoke,
    }
