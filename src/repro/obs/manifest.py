"""Run manifests: the provenance record of one regenerated artefact.

Every experiment run answers, months later, the questions "which code,
which configuration, which seeds produced this CSV?".  A
:class:`RunManifest` pins:

* the experiment id and the extra arguments it ran with;
* a SHA-256 digest of the :class:`~repro.core.params.SystemConfig`
  (:func:`config_digest` — exact over the dataclass fields' reprs);
* the seeds involved, the package version, the UTC start stamp and the
  wall time;
* a metrics snapshot (when a telemetry session was active) and the
  event-journal digest (when the run produced a journal).

Manifests are attached to :class:`~repro.sim.results.FigureResult` /
:class:`~repro.sim.results.TableResult` on a ``compare=False`` field
and written as ``<id>.manifest.json`` sidecars next to CSV/JSON
exports.  They are *descriptive only*: wall time and timestamps never
feed result values, renders, or determinism digests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..core.params import SystemConfig


def config_digest(config: SystemConfig) -> str:
    """A SHA-256 fingerprint of a configuration's exact field values.

    Fields are hashed through ``repr`` in sorted order, so two digests
    agree iff every parameter is bit-identical.
    """
    fields = dataclasses.asdict(config)
    text = "|".join(f"{k}={fields[k]!r}" for k in sorted(fields))
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one experiment run (see the module docstring)."""

    experiment_id: str
    config_digest: str
    version: str
    seeds: tuple[int, ...] = ()
    args: str = ""
    started_at_utc: str = ""
    wall_time_s: float = 0.0
    metrics: Mapping[str, Any] = field(default_factory=dict)
    journal_digest: str | None = None

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able dict form (the sidecar/export format)."""
        return {
            "kind": "manifest",
            "experiment_id": self.experiment_id,
            "config_digest": self.config_digest,
            "version": self.version,
            "seeds": list(self.seeds),
            "args": self.args,
            "started_at_utc": self.started_at_utc,
            "wall_time_s": self.wall_time_s,
            "metrics": dict(self.metrics),
            "journal_digest": self.journal_digest,
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`as_dict` output."""
        return cls(
            experiment_id=row["experiment_id"],
            config_digest=row["config_digest"],
            version=row["version"],
            seeds=tuple(row.get("seeds", ())),
            args=row.get("args", ""),
            started_at_utc=row.get("started_at_utc", ""),
            wall_time_s=row.get("wall_time_s", 0.0),
            metrics=dict(row.get("metrics", {})),
            journal_digest=row.get("journal_digest"),
        )

    def to_json(self) -> str:
        """The manifest as an indented JSON document."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """A one-line human summary (used by ``repro stats``)."""
        bits = [self.experiment_id or "?",
                f"config {self.config_digest[:12]}",
                f"v{self.version}"]
        if self.seeds:
            bits.append("seeds " + ",".join(str(s) for s in self.seeds))
        if self.wall_time_s:
            bits.append(f"{self.wall_time_s:.3f} s")
        if self.journal_digest:
            bits.append(f"journal {self.journal_digest[:12]}")
        return "  ".join(bits)


def write_manifest(manifest: RunManifest, path: str | Path) -> Path:
    """Write one manifest as an indented JSON sidecar file."""
    path = Path(path)
    path.write_text(manifest.to_json() + "\n")
    return path
