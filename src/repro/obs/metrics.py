"""Labelled metrics: counters, gauges and fixed-bucket histograms.

The registry is the quantitative half of the telemetry layer (spans in
:mod:`repro.obs.spans` are the temporal half).  Three metric kinds, all
keyed by a name plus a frozen label set:

* :class:`Counter` — a monotonically increasing sum (``inc``);
* :class:`Gauge` — a last-written level (``set``), merged across
  shards by taking the maximum;
* :class:`Histogram` — observations bucketed into *fixed* upper bounds
  chosen at creation, plus a running count and sum.

Two properties shape the design:

**Mergeability.** ``SweepRunner`` fans grid points across a
:class:`~concurrent.futures.ProcessPoolExecutor`; each worker records
into its own registry and ships a picklable :meth:`snapshot` back.
:func:`merge` combines any two registries into a new one and is
associative and commutative (counters and histogram buckets add,
gauges take the max), so the parent can fold worker shards in any
order — scheduling never changes the aggregate.

**A free null path.** Telemetry is off by default.  The module-level
:data:`NULL_REGISTRY` hands out shared no-op metric objects whose
``inc``/``set``/``observe`` are empty methods, so instrumentation left
in the hot loops costs one attribute call when disabled — no branches,
no allocation, no dictionary lookups.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

LabelKey = tuple  # tuple[tuple[str, str], ...] — a frozen label set

#: Default histogram upper bounds: wall-time seconds, log-ish spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical frozen form of a label set (sorted, stringified)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A labelled, monotonically increasing sum."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be non-negative) to one label series."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """The current sum for one label set (0.0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """All ``label-key -> value`` pairs (a shallow copy)."""
        return dict(self._series)


class Gauge:
    """A labelled level: last write wins locally, max wins across shards."""

    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the gauge for one label set."""
        self._series[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking)."""
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None or value > current:
            self._series[key] = float(value)

    def value(self, **labels: Any) -> float:
        """The current level for one label set (0.0 if never set)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """All ``label-key -> value`` pairs (a shallow copy)."""
        return dict(self._series)


class Histogram:
    """Observations in fixed buckets, plus running count and sum.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the tail, so every observation lands somewhere.  Buckets
    are fixed at creation — two histograms only merge when their bounds
    agree exactly, which keeps the merge associative.
    """

    __slots__ = ("name", "help", "buckets", "_series")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = bounds
        # label-key -> [bucket counts (incl. +Inf), count, sum]
        self._series: dict[LabelKey, list] = {}

    def _cells(self, labels: Mapping[str, Any]) -> list:
        key = _label_key(labels)
        cells = self._series.get(key)
        if cells is None:
            cells = [[0] * (len(self.buckets) + 1), 0, 0.0]
            self._series[key] = cells
        return cells

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        cells = self._cells(labels)
        counts, _, _ = cells
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        cells[1] += 1
        cells[2] += float(value)

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        """Record a batch of observations (one Python loop, no arrays)."""
        for value in values:
            self.observe(value, **labels)

    def count(self, **labels: Any) -> int:
        """Total observations for one label set."""
        cells = self._series.get(_label_key(labels))
        return cells[1] if cells else 0

    def sum(self, **labels: Any) -> float:
        """Sum of observations for one label set."""
        cells = self._series.get(_label_key(labels))
        return cells[2] if cells else 0.0

    def percentile(self, q: float, **labels: Any) -> float:
        """The ``q``-th percentile estimated from the fixed buckets.

        Linear interpolation inside the bucket containing the rank —
        the same estimate ``histogram_quantile`` makes in PromQL.  The
        lower edge of the first bucket is 0 (or the bound itself when
        negative); observations in the ``+Inf`` overflow bucket
        resolve to the highest finite bound, which is the honest cap a
        fixed-bucket histogram can report.  NaN when the label set has
        no observations.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {q}")
        cells = self._series.get(_label_key(labels))
        if cells is None or cells[1] == 0:
            return float("nan")
        counts, count, _ = cells
        rank = q / 100.0 * count
        cumulative = 0
        lower = min(0.0, self.buckets[0])
        for bound, n in zip(self.buckets, counts):
            if n and cumulative + n >= rank:
                fraction = min(1.0, max(0.0, (rank - cumulative) / n))
                return lower + (bound - lower) * fraction
            cumulative += n
            lower = bound
        return self.buckets[-1]

    def bucket_counts(self, **labels: Any) -> tuple[int, ...]:
        """Per-bucket counts (last entry is the +Inf overflow bucket)."""
        cells = self._series.get(_label_key(labels))
        if cells is None:
            return tuple([0] * (len(self.buckets) + 1))
        return tuple(cells[0])

    def series(self) -> dict[LabelKey, list]:
        """All ``label-key -> [bucket counts, count, sum]`` (deep-ish copy)."""
        return {k: [list(v[0]), v[1], v[2]] for k, v in self._series.items()}


class _NullMetric:
    """Shared no-op stand-in for every metric kind (telemetry off)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """No-op."""

    def set(self, value: float, **labels: Any) -> None:
        """No-op."""

    def set_max(self, value: float, **labels: Any) -> None:
        """No-op."""

    def observe(self, value: float, **labels: Any) -> None:
        """No-op."""

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        """No-op."""


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Get-or-create home for every named metric of one session.

    Re-requesting a name returns the existing object; requesting it as
    a different kind (or a histogram with different buckets) raises, so
    instrumentation sites cannot silently split a metric.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if type(metric) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name`` (created on first request)."""
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name`` (created on first request)."""
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name`` (created on first request).

        A repeat request must carry the same bucket bounds.
        """
        metric = self._get(name, Histogram, help=help, buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{metric.buckets}")
        return metric

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric called ``name``, or None."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __bool__(self) -> bool:
        # An empty registry is still a real registry.
        return True

    # -- snapshots and merging ------------------------------------------

    def snapshot(self) -> dict:
        """A picklable, JSON-able copy of every metric's state.

        The inverse is :meth:`from_snapshot`; ``absorb`` folds a
        snapshot from another process into this registry.
        """
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                out["counters"][name] = {
                    "help": metric.help,
                    "series": [[list(map(list, k)), v]
                               for k, v in sorted(metric.series().items())],
                }
            elif isinstance(metric, Gauge):
                out["gauges"][name] = {
                    "help": metric.help,
                    "series": [[list(map(list, k)), v]
                               for k, v in sorted(metric.series().items())],
                }
            else:
                out["histograms"][name] = {
                    "help": metric.help,
                    "buckets": list(metric.buckets),
                    "series": [[list(map(list, k)), cells]
                               for k, cells in sorted(metric.series().items())],
                }
        return out

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict."""
        registry = cls()
        registry.absorb(snapshot)
        return registry

    def absorb(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot into this registry in place.

        Counters and histogram cells add; gauges take the maximum —
        the same rules as :func:`merge`.
        """
        for name, body in snapshot.get("counters", {}).items():
            counter = self.counter(name, help=body.get("help", ""))
            for raw_key, value in body["series"]:
                labels = {k: v for k, v in raw_key}
                counter.inc(value, **labels)
        for name, body in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, help=body.get("help", ""))
            for raw_key, value in body["series"]:
                labels = {k: v for k, v in raw_key}
                gauge.set_max(value, **labels)
        for name, body in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, help=body.get("help", ""),
                                  buckets=body["buckets"])
            for raw_key, cells in body["series"]:
                labels = {k: v for k, v in raw_key}
                target = hist._cells(labels)
                counts, count, total = cells
                for i, c in enumerate(counts):
                    target[0][i] += c
                target[1] += count
                target[2] += total


class NullRegistry:
    """The telemetry-off registry: every metric is the shared no-op.

    Duck-types :class:`MetricsRegistry` for the recording half of the
    API; reading (``names``/``snapshot``) reports emptiness.
    """

    __slots__ = ()

    def counter(self, name: str, help: str = "") -> _NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> _NullMetric:
        """The shared no-op metric."""
        return _NULL_METRIC

    def names(self) -> list[str]:
        """Always empty."""
        return []

    def get(self, name: str) -> None:
        """Always None."""
        return None

    def snapshot(self) -> dict:
        """An empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def absorb(self, snapshot: Mapping[str, Any]) -> None:
        """Discard the shard (telemetry is off)."""

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
"""The shared disabled registry handed out when no session is active."""


def merge(a: MetricsRegistry, b: MetricsRegistry) -> MetricsRegistry:
    """Combine two registries into a new one (pure; inputs untouched).

    Counters and histogram cells add, gauges take the elementwise
    maximum — all associative and commutative, so folding worker shards
    in any order or grouping yields the same aggregate (exactly so for
    integer-valued series; float sums commute and agree to rounding).
    """
    out = MetricsRegistry()
    out.absorb(a.snapshot())
    out.absorb(b.snapshot())
    return out
