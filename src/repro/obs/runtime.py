"""The active telemetry session and the instrumentation entry points.

Instrumented code touches telemetry through exactly two calls:

* ``metrics()`` — the active session's :class:`MetricsRegistry`, or
  the shared :data:`~repro.obs.metrics.NULL_REGISTRY` when telemetry
  is off; and
* ``span(name, **attrs)`` — a timed context manager under the active
  session, or the shared no-op :data:`~repro.obs.spans.NULL_SPAN`.

Both are one module-global read plus a ``None`` check on the disabled
path, so instrumentation can stay in the hot loops permanently.  A
session is opened with::

    with telemetry_session() as session:
        run_experiment("fig16")
        write_telemetry_jsonl(session, "telemetry.jsonl")

Sessions nest (the previous one is restored on exit), which is also
how :class:`~repro.sim.sweep.SweepRunner` workers isolate their shard:
each child process opens its own session around its grid point and
ships the registry snapshot back for the parent to absorb.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .manifest import RunManifest
from .metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .spans import NULL_SPAN, NullSpan, SpanRecorder, _OpenSpan


class Telemetry:
    """One telemetry session: a registry, a span recorder, manifests."""

    __slots__ = ("registry", "spans", "manifests")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder()
        self.manifests: list[RunManifest] = []


_SESSION: Telemetry | None = None


def active() -> Telemetry | None:
    """The active session, or None when telemetry is off."""
    return _SESSION


def enabled() -> bool:
    """Whether a telemetry session is currently active."""
    return _SESSION is not None


def metrics() -> MetricsRegistry | NullRegistry:
    """The active registry, or the shared null registry when off."""
    session = _SESSION
    return NULL_REGISTRY if session is None else session.registry


def span(name: str, **attrs: Any) -> "_OpenSpan | NullSpan":
    """A timed span under the active session (no-op when off)."""
    session = _SESSION
    if session is None:
        return NULL_SPAN
    return session.spans.span(name, **attrs)


def record_manifest(manifest: RunManifest) -> None:
    """Attach a run manifest to the active session (dropped when off)."""
    session = _SESSION
    if session is not None:
        session.manifests.append(manifest)


@contextmanager
def telemetry_session() -> Iterator[Telemetry]:
    """Activate a fresh session for the block; restore the previous one.

    The yielded :class:`Telemetry` stays readable after the block — the
    usual shape is to run work inside and export afterwards.
    """
    global _SESSION
    previous = _SESSION
    session = Telemetry()
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = previous
