"""Statistically stable benchmark tracking with regression gating.

A single timing of a workload is noise: the first call pays import and
allocation costs, the scheduler preempts, turbo states drift.  This
module gives every benchmark in the repository the same discipline —
warm up, time ``k`` repeats, keep the order statistics — and a memory:
each run appends one :class:`BenchRecord` per workload to an
append-only ``BENCH_HISTORY.jsonl``, so "is this slower than it used
to be?" is answerable from the file instead of from folklore.

The pieces:

* :class:`BenchRunner` — runs a callable ``warmup`` times untimed and
  ``repeats`` times timed, and keeps a :class:`BenchRecord` holding
  the raw samples, their min / quartiles / median, and a
  :class:`~repro.obs.manifest.RunManifest` pinning which code and
  configuration produced them.
* :func:`append_history` / :func:`load_history` — the JSONL store.
* :func:`detect_regressions` — the noise-aware gate: a workload is
  flagged only when its current best (*min*) sample exceeds the
  historical best *min* by more than an IQR-derived band (see
  :func:`regression_threshold`).  Gating on the min matches the
  best-of-k timing discipline above: scheduler preemption and turbo
  drift only ever *add* time, so a noisy rerun still lands one honest
  sample near the floor, while a real slowdown lifts every sample —
  min included.  Honest jitter never fails a run; a real slowdown
  always does.

Timing samples are wall-clock and therefore live only here and in the
history file — never in result values or determinism digests.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.params import DEFAULT_CONFIG, SystemConfig
from .manifest import RunManifest, config_digest


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not ordered:
        raise ValueError("quantile of an empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


def new_run_id() -> str:
    """A unique-enough id grouping the records of one bench invocation."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%S.%f")
    return f"{stamp}-{os.getpid()}"


@dataclass(frozen=True)
class BenchRecord:
    """One workload's timing under one bench run: samples + order stats."""

    name: str
    samples_s: tuple[float, ...]
    warmup: int = 0
    run_id: str = ""
    recorded_at_utc: str = ""
    min_s: float = 0.0
    q1_s: float = 0.0
    median_s: float = 0.0
    q3_s: float = 0.0
    manifest: RunManifest | None = field(default=None, compare=False)

    @property
    def iqr_s(self) -> float:
        """The interquartile range — the record's own noise estimate."""
        return self.q3_s - self.q1_s

    @classmethod
    def from_samples(cls, name: str, samples: Iterable[float],
                     warmup: int = 0, run_id: str = "",
                     recorded_at_utc: str = "",
                     manifest: RunManifest | None = None) -> "BenchRecord":
        """Build a record, deriving the order statistics from samples."""
        values = tuple(float(s) for s in samples)
        if not values:
            raise ValueError("a bench record needs at least one sample")
        ordered = sorted(values)
        return cls(
            name=name, samples_s=values, warmup=warmup, run_id=run_id,
            recorded_at_utc=recorded_at_utc,
            min_s=ordered[0],
            q1_s=_quantile(ordered, 0.25),
            median_s=_quantile(ordered, 0.5),
            q3_s=_quantile(ordered, 0.75),
            manifest=manifest,
        )

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able dict (one ``BENCH_HISTORY.jsonl`` line)."""
        row: dict[str, Any] = {
            "kind": "bench",
            "name": self.name,
            "run_id": self.run_id,
            "recorded_at_utc": self.recorded_at_utc,
            "samples_s": list(self.samples_s),
            "warmup": self.warmup,
            "min_s": self.min_s,
            "q1_s": self.q1_s,
            "median_s": self.median_s,
            "q3_s": self.q3_s,
        }
        if self.manifest is not None:
            row["manifest"] = self.manifest.as_dict()
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "BenchRecord":
        """Rebuild a record from :meth:`as_dict` output."""
        manifest = row.get("manifest")
        return cls.from_samples(
            row["name"], row["samples_s"],
            warmup=row.get("warmup", 0),
            run_id=row.get("run_id", ""),
            recorded_at_utc=row.get("recorded_at_utc", ""),
            manifest=None if manifest is None
            else RunManifest.from_dict(manifest),
        )


def deterministic_timer(step_s: float = 1e-3) -> Callable[[], float]:
    """A fake clock advancing ``step_s`` per call.

    Injected into :class:`BenchRunner` (``timer=``) it makes every
    timed sample exactly ``step_s``, so identical invocations produce
    identical records and the regression gate's plumbing can be tested
    without depending on wall-clock behaviour of the host — shared CI
    runners throttle hard enough that even best-of-k minima of real
    timings move by tens of percent between back-to-back runs.  The
    CLI exposes it as ``REPRO_BENCH_TIMER=fake``.
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    calls = iter(range(0, 1 << 62))
    return lambda: next(calls) * step_s


class BenchRunner:
    """Warmup + best-of-k timing for benchmark workloads.

    ``run(name, func, *args, **kwargs)`` calls ``func`` ``warmup``
    times untimed and then ``repeats`` times timed, returning the
    finished :class:`BenchRecord` together with the last call's result
    (workloads are idempotent regenerations, so any call's result will
    do).  All records accumulate on :attr:`records` for one
    :func:`append_history` at the end.

    ``scale`` multiplies every measured sample — a synthetic-slowdown
    hook for exercising the regression gate (``repro bench run
    --slowdown 2``) without actually making anything slower.  ``timer``
    is injectable for deterministic tests.
    """

    def __init__(self, repeats: int = 5, warmup: int = 1,
                 config: SystemConfig | None = None, scale: float = 1.0,
                 timer: Callable[[], float] = time.perf_counter):
        if repeats < 1:
            raise ValueError("repeats must be a positive integer")
        if warmup < 0:
            raise ValueError("warmup cannot be negative")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.repeats = repeats
        self.warmup = warmup
        self.config = config if config is not None else DEFAULT_CONFIG
        self.scale = scale
        self.timer = timer
        self.run_id = new_run_id()
        self.records: list[BenchRecord] = []

    def measure(self, name: str, func: Callable, *args: Any,
                repeats: int | None = None, warmup: int | None = None,
                **kwargs: Any) -> tuple[BenchRecord, Any]:
        """Time one workload without recording it on :attr:`records`."""
        from .. import __version__

        repeats = self.repeats if repeats is None else repeats
        warmup = self.warmup if warmup is None else warmup
        if repeats < 1:
            raise ValueError("repeats must be a positive integer")
        started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
        result: Any = None
        for _ in range(warmup):
            result = func(*args, **kwargs)
        samples: list[float] = []
        for _ in range(repeats):
            t0 = self.timer()
            result = func(*args, **kwargs)
            samples.append((self.timer() - t0) * self.scale)
        manifest = RunManifest(
            experiment_id=f"bench.{name}",
            config_digest=config_digest(self.config),
            version=__version__,
            started_at_utc=started_at,
            wall_time_s=sum(samples),
        )
        record = BenchRecord.from_samples(
            name, samples, warmup=warmup, run_id=self.run_id,
            recorded_at_utc=started_at, manifest=manifest)
        return record, result

    def run(self, name: str, func: Callable, *args: Any,
            repeats: int | None = None, warmup: int | None = None,
            **kwargs: Any) -> tuple[BenchRecord, Any]:
        """:meth:`measure`, with the record kept on :attr:`records`."""
        record, result = self.measure(name, func, *args, repeats=repeats,
                                      warmup=warmup, **kwargs)
        self.records.append(record)
        return record, result


# -- the append-only history store --------------------------------------


def append_history(records: Iterable[BenchRecord],
                   path: str | Path) -> Path:
    """Append records to the history file (created when missing)."""
    path = Path(path)
    with path.open("a") as handle:
        for record in records:
            handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    return path


def load_history(path: str | Path) -> list[BenchRecord]:
    """Every record in the history file, in append order.

    A missing file is an empty history; a malformed line raises
    ``ValueError`` naming the file and line.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[BenchRecord] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if not isinstance(row, dict) or row.get("kind") != "bench":
            raise ValueError(f"{path}:{lineno}: not a bench record")
        records.append(BenchRecord.from_dict(row))
    return records


def group_by_name(records: Iterable[BenchRecord]
                  ) -> dict[str, list[BenchRecord]]:
    """Records grouped per workload name, preserving append order."""
    grouped: dict[str, list[BenchRecord]] = {}
    for record in records:
        grouped.setdefault(record.name, []).append(record)
    return grouped


def last_run(records: Sequence[BenchRecord]
             ) -> tuple[list[BenchRecord], list[BenchRecord]]:
    """Split history into (records of the latest run, everything before).

    The latest run is the ``run_id`` of the final record; its records
    are returned in order, with all earlier records as the baseline.
    """
    if not records:
        return [], []
    latest = records[-1].run_id
    current = [r for r in records if r.run_id == latest]
    earlier = [r for r in records if r.run_id != latest]
    return current, earlier


# -- the noise-aware regression gate ------------------------------------


@dataclass(frozen=True)
class RegressionPolicy:
    """How far above the historical baseline counts as a regression.

    ``rel_floor`` is the always-tolerated relative band above the
    baseline min (micro-benchmarks jitter a few percent run to run no
    matter what).  ``iqr_mult`` widens the band for workloads whose own
    history is noisy: the threshold also admits anything below the
    worst historical q3 plus this many worst-case IQRs.  The effective
    band is the max of the two, so the gate adapts to each workload's
    observed spread instead of applying one brittle percentage.
    """

    rel_floor: float = 0.10
    iqr_mult: float = 2.0

    def __post_init__(self) -> None:
        if self.rel_floor < 0 or self.iqr_mult < 0:
            raise ValueError("policy bands cannot be negative")


DEFAULT_POLICY = RegressionPolicy()


def regression_threshold(baseline: Sequence[BenchRecord],
                         policy: RegressionPolicy = DEFAULT_POLICY) -> float:
    """The slowest acceptable best-sample time given a workload's history."""
    if not baseline:
        raise ValueError("regression threshold needs at least one record")
    base_min = min(r.min_s for r in baseline)
    worst_q3 = max(r.q3_s for r in baseline)
    worst_iqr = max(r.iqr_s for r in baseline)
    band = max(policy.rel_floor * base_min,
               (worst_q3 - base_min) + policy.iqr_mult * worst_iqr)
    return base_min + band


@dataclass(frozen=True)
class Regression:
    """One flagged workload: its best sample crossed the historical band.

    ``median_s`` is carried for reporting (it is the better central
    estimate of how slow the run actually was), but the *gate* fires on
    ``min_s`` — see :func:`detect_regressions`.
    """

    name: str
    min_s: float
    median_s: float
    threshold_s: float
    baseline_min_s: float

    @property
    def slowdown(self) -> float:
        """Current median over the historical best min."""
        if self.baseline_min_s <= 0:
            return float("inf")
        return self.median_s / self.baseline_min_s

    def describe(self) -> str:
        """A one-line human-readable report of the flag."""
        return (f"REGRESSION {self.name}: min {self.min_s * 1e3:.3f} ms"
                f" > threshold {self.threshold_s * 1e3:.3f} ms"
                f" (baseline min {self.baseline_min_s * 1e3:.3f} ms,"
                f" median {self.median_s * 1e3:.3f} ms,"
                f" {self.slowdown:.2f}x)")


def detect_regressions(current: Iterable[BenchRecord],
                       history: Iterable[BenchRecord],
                       policy: RegressionPolicy = DEFAULT_POLICY
                       ) -> list[Regression]:
    """Flag every current record whose best sample crossed its band.

    The gate compares the current *min* — not the median — against the
    threshold.  Timing noise on a shared machine is one-sided (a
    preempted sample is slower, never faster), so the min is the
    statistic least contaminated by the environment: a noisy rerun of
    unchanged code still produces one sample near the true floor and
    passes, while a genuine regression slows every sample, min
    included, and is always caught.  Since ``median >= min``, every
    flag raised here would also have been raised by a median gate; the
    runs it additionally lets through are exactly those where the min
    stayed at the floor but preemption inflated the middle samples —
    i.e. the false positives.

    Workloads with no history pass silently — the first recorded run
    *is* the baseline.
    """
    baseline = group_by_name(history)
    flags: list[Regression] = []
    for record in current:
        prior = baseline.get(record.name)
        if not prior:
            continue
        threshold = regression_threshold(prior, policy)
        if record.min_s > threshold:
            flags.append(Regression(
                name=record.name,
                min_s=record.min_s,
                median_s=record.median_s,
                threshold_s=threshold,
                baseline_min_s=min(r.min_s for r in prior),
            ))
    return flags
