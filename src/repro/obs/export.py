"""Telemetry exporters: JSONL, Prometheus text format, aligned text.

Three consumers, three formats:

* :func:`write_telemetry_jsonl` / :func:`read_telemetry_jsonl` — the
  machine round-trip.  One self-describing JSON object per line
  (``type`` is ``counter`` / ``gauge`` / ``histogram`` / ``span`` /
  ``manifest``), so external tooling can stream-filter a dump without
  a schema, and ``repro stats`` can rebuild the full session.
* :func:`render_prometheus` — the metrics half in Prometheus text
  exposition format (cumulative ``_bucket`` series, ``_sum`` and
  ``_count``), ready for a pushgateway or a scrape-file exporter.
* :func:`render_text` — counters, histograms and the span tree as
  aligned terminal text, consistent with
  :meth:`repro.des.journal.EventJournal.render`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Mapping

from .manifest import RunManifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import Telemetry
from .spans import SpanRecord, span_tree

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
"""The Content-Type of the text exposition format, for HTTP scrapers."""


def _labels_dict(key) -> dict[str, str]:
    return {k: v for k, v in key}


def telemetry_rows(session: Telemetry) -> list[dict[str, Any]]:
    """Flatten a session into JSONL-ready records (one dict per line)."""
    rows: list[dict[str, Any]] = []
    registry = session.registry
    for name in registry.names():
        metric = registry.get(name)
        if isinstance(metric, Counter):
            for key, value in sorted(metric.series().items()):
                rows.append({"type": "counter", "name": name,
                             "help": metric.help,
                             "labels": _labels_dict(key), "value": value})
        elif isinstance(metric, Gauge):
            for key, value in sorted(metric.series().items()):
                rows.append({"type": "gauge", "name": name,
                             "help": metric.help,
                             "labels": _labels_dict(key), "value": value})
        elif isinstance(metric, Histogram):
            for key, cells in sorted(metric.series().items()):
                counts, count, total = cells
                rows.append({"type": "histogram", "name": name,
                             "help": metric.help,
                             "labels": _labels_dict(key),
                             "buckets": list(metric.buckets),
                             "bucket_counts": list(counts),
                             "count": count, "sum": total})
    for record in session.spans.records:
        row = record.as_dict()
        row["type"] = "span"
        rows.append(row)
    for manifest in session.manifests:
        row = manifest.as_dict()
        row["type"] = "manifest"
        rows.append(row)
    return rows


def write_telemetry_jsonl(session: Telemetry, path: str | Path) -> Path:
    """Write a whole session as JSON lines; returns the written path."""
    path = Path(path)
    with path.open("w") as handle:
        for row in telemetry_rows(session):
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def read_telemetry_jsonl(path: str | Path) -> Telemetry:
    """Rebuild a session from a :func:`write_telemetry_jsonl` dump.

    Raises ``ValueError`` on malformed lines or unknown record types,
    so ``repro stats`` can reject a non-telemetry file cleanly.
    """
    path = Path(path)
    session = Telemetry()
    registry = session.registry
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
        if not isinstance(row, dict) or "type" not in row:
            raise ValueError(f"{path}:{lineno}: not a telemetry record")
        kind = row["type"]
        labels = row.get("labels", {})
        if kind == "counter":
            registry.counter(row["name"], help=row.get("help", "")) \
                .inc(row["value"], **labels)
        elif kind == "gauge":
            registry.gauge(row["name"], help=row.get("help", "")) \
                .set_max(row["value"], **labels)
        elif kind == "histogram":
            hist = registry.histogram(row["name"], help=row.get("help", ""),
                                      buckets=row["buckets"])
            cells = hist._cells(labels)
            for i, c in enumerate(row["bucket_counts"]):
                cells[0][i] += c
            cells[1] += row["count"]
            cells[2] += row["sum"]
        elif kind == "span":
            session.spans._finished.append(SpanRecord(
                span_id=row["span_id"], parent_id=row.get("parent_id"),
                name=row["name"], depth=row.get("depth", 0),
                start_s=row["start_s"], duration_s=row["duration_s"],
                attrs=tuple(sorted(row.get("attrs", {}).items()))))
        elif kind == "manifest":
            session.manifests.append(RunManifest.from_dict(row))
        else:
            raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return session


# -- Prometheus text exposition format ---------------------------------


def _prom_name(name: str) -> str:
    return _PROM_NAME.sub("_", name)


def _prom_escape(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double quote and line feed are the three characters the
    spec requires escaping inside quoted label values; anything else
    (a path, an error message) passes through verbatim.
    """
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_help(text: str) -> str:
    """Escape HELP text (backslash and line feed, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{_prom_escape(v)}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text format (metrics only, no spans)."""
    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        prom = _prom_name(name)
        if metric.help:
            lines.append(f"# HELP {prom} {_prom_help(metric.help)}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            for key, value in sorted(metric.series().items()):
                lines.append(
                    f"{prom}{_prom_labels(_labels_dict(key))} "
                    f"{_prom_value(value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            for key, value in sorted(metric.series().items()):
                lines.append(
                    f"{prom}{_prom_labels(_labels_dict(key))} "
                    f"{_prom_value(value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            for key, cells in sorted(metric.series().items()):
                labels = _labels_dict(key)
                counts, count, total = cells
                cumulative = 0
                for bound, n in zip(metric.buckets, counts):
                    cumulative += n
                    le = 'le="%g"' % bound
                    lines.append(f"{prom}_bucket{_prom_labels(labels, le)} "
                                 f"{cumulative}")
                cumulative += counts[-1]
                le_inf = 'le="+Inf"'
                lines.append(f"{prom}_bucket{_prom_labels(labels, le_inf)} "
                             f"{cumulative}")
                lines.append(
                    f"{prom}_sum{_prom_labels(labels)} {_prom_value(total)}")
                lines.append(f"{prom}_count{_prom_labels(labels)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- aligned terminal text ---------------------------------------------


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return f"{int(value)}"
    return f"{value:.6g}"


def render_text(session: Telemetry, max_spans: int = 40) -> str:
    """Counters, gauges, histograms and the span tree as aligned text."""
    registry = session.registry
    names = registry.names()
    counters = [n for n in names if isinstance(registry.get(n), Counter)]
    gauges = [n for n in names if isinstance(registry.get(n), Gauge)]
    hists = [n for n in names if isinstance(registry.get(n), Histogram)]
    spans = session.spans.records
    lines = [f"telemetry: {len(counters)} counters, {len(gauges)} gauges, "
             f"{len(hists)} histograms, {len(spans)} spans, "
             f"{len(session.manifests)} manifests"]

    def metric_rows(metric_names):
        rows = []
        for name in metric_names:
            metric = registry.get(name)
            for key, value in sorted(metric.series().items()):
                rows.append((f"{name}{_fmt_labels(_labels_dict(key))}",
                             _fmt_value(value)))
        return rows

    for title, rows in (("counters", metric_rows(counters)),
                        ("gauges", metric_rows(gauges))):
        if rows:
            lines.append(f"{title}:")
            width = max(len(label) for label, _ in rows)
            for label, value in rows:
                lines.append(f"  {label:<{width}}  {value:>12}")

    if hists:
        lines.append("histograms:")
        for name in hists:
            metric = registry.get(name)
            for key, cells in sorted(metric.series().items()):
                counts, count, total = cells
                mean = total / count if count else 0.0
                line = (f"  {name}{_fmt_labels(_labels_dict(key))}  "
                        f"count {count}  sum {total:.6g}  mean {mean:.6g}")
                if count:
                    labels = _labels_dict(key)
                    p50, p95, p99 = (metric.percentile(q, **labels)
                                     for q in (50, 95, 99))
                    line += (f"  p50 {p50:.6g}  p95 {p95:.6g}  "
                             f"p99 {p99:.6g}")
                lines.append(line)
                for bound, n in zip(metric.buckets, counts):
                    if n:
                        lines.append(f"    le {bound:<10g} {n:>8}")
                if counts[-1]:
                    lines.append(f"    le +Inf       {counts[-1]:>8}")

    if spans:
        lines.append("spans:")
        shown = 0

        def walk(nodes):
            nonlocal shown
            for record, children in nodes:
                if shown >= max_spans:
                    return
                attrs = " ".join(f"{k}={v}" for k, v in record.attrs)
                label = ("  " + "  " * record.depth + record.name
                         + (f"  [{attrs}]" if attrs else ""))
                lines.append(f"{label:<56} {record.duration_s * 1e3:>10.2f} ms")
                shown += 1
                walk(children)

        walk(span_tree(spans))
        if len(spans) > shown:
            lines.append(f"  ... {len(spans) - shown} more spans")

    if session.manifests:
        lines.append("manifests:")
        for manifest in session.manifests:
            lines.append(f"  {manifest.summary()}")
    return "\n".join(lines)
