"""Budgeted fuzz campaigns: execute, isolate, journal, shrink.

A campaign is ``budget`` cases derived from one seed (see
:mod:`.generators`), executed across the :class:`~repro.sim.sweep.
SweepRunner` process pool in chunks.  Three failure channels feed one
findings journal:

* **oracle failures** — the worker returns ``status="fail"``;
* **errors** — the worker catches an unexpected exception and returns
  ``status="error"`` with the traceback head;
* **crashes / hangs** — the worker process dies (journaled by
  :meth:`~repro.sim.sweep.SweepRunner.map_guarded` re-isolation) or
  trips its in-worker deadline (``status="hang"`` via ``SIGALRM``).

None of these stop the campaign.  Every finding is then shrunk with
the delta-debugging reducer — in-process when re-execution is safe
(fail/error), in throwaway single-worker pools when the failure kills
its process (crash/hang) — and the minimal repro ships in the finding
record, ready for ``repro fuzz replay`` or the regression corpus.

The campaign digest is a SHA-256 over the per-case result digests *in
index order*, which makes it independent of ``--jobs``: the
determinism property the CLI and the CI smoke job assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..obs import metrics, span
from ..sim.sweep import SweepRunner
from .generators import DEFAULT_WEIGHTS, FuzzCase, generate_case
from .oracles import (DEFECT_ENV, DEFECT_N_THRESHOLD,
                      DEFECT_SYMBOLS_THRESHOLD, ORACLES, CaseResult,
                      execute_params, result_digest)
from .shrinker import ShrinkOutcome, ShrinkStats, shrink

#: Per-case wall-clock deadline (seconds) before a case counts as hung.
DEFAULT_TIMEOUT_S = 30.0

#: Cases shipped to the pool per scheduling round.
DEFAULT_CHUNK = 128

#: Oracle-execution budget for shrinking one finding.
SHRINK_ATTEMPTS = 400

#: Shrink budget when every probe needs its own process (crash/hang).
ISOLATED_SHRINK_ATTEMPTS = 24


class _CaseDeadline(Exception):
    """Raised inside a worker when a case overruns its deadline."""


def _alarm_handler(signum, frame):  # pragma: no cover - signal context
    raise _CaseDeadline()


def _execute_with_deadline(oracle: str, params: dict,
                           timeout_s: float) -> dict:
    """Run one oracle under a best-effort in-worker deadline.

    Returns a JSON-able record with ``status`` in
    ``ok | fail | error | hang`` plus the result digest for ``ok`` and
    ``fail`` (deterministic outcomes; errors and hangs carry no digest
    because a traceback is not part of the replay contract).
    """
    use_alarm = (hasattr(signal, "SIGALRM") and timeout_s > 0
                 and signal.getsignal(signal.SIGALRM)
                 in (signal.SIG_DFL, signal.SIG_IGN, _alarm_handler))
    if use_alarm:
        signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        result = execute_params(oracle, params)
    except _CaseDeadline:
        return {"status": "hang",
                "detail": f"case exceeded its {timeout_s:g}s deadline"}
    except Exception as exc:
        head = traceback.format_exc().strip().splitlines()[-1]
        return {"status": "error",
                "detail": f"{type(exc).__name__}: {exc}"[:500],
                "traceback_tail": head[:500]}
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
    record = result.as_dict()
    record["digest"] = result_digest(oracle, params, result)
    return record


def _run_case(case_dict: dict) -> dict:
    """Module-level pool worker: one case dict in, one record out."""
    case = FuzzCase.from_dict(case_dict)
    timeout_s = float(case_dict.get("timeout_s", DEFAULT_TIMEOUT_S))
    return _execute_with_deadline(case.oracle, dict(case.params), timeout_s)


def _probe_isolated(oracle: str, params: dict, timeout_s: float) -> str:
    """Execute params in a throwaway process; return the status.

    The crash/hang shrinking predicate: a candidate that kills or
    stalls its process still counts as failing, and neither outcome
    can be allowed to touch the campaign's own process or pool.
    """
    job = {"seed": 0, "index": 0, "oracle": oracle, "params": params,
           "timeout_s": timeout_s}
    with ProcessPoolExecutor(max_workers=1) as pool:
        future = pool.submit(_run_case, job)
        try:
            record = future.result(timeout=timeout_s + 5.0)
        except BrokenProcessPool:
            return "crash"
        except FutureTimeout:
            for process in pool._processes.values():  # drain the hang
                process.terminate()
            return "hang"
    return str(record["status"])


@dataclass(frozen=True)
class Finding:
    """One journaled failure with its shrunk minimal repro."""

    case: FuzzCase
    status: str                       # fail | error | crash | hang
    detail: str
    observation: dict
    digest: str | None                # replay digest (fail only)
    shrunk: ShrinkOutcome | None

    def as_dict(self) -> dict:
        return {
            "case": self.case.as_dict(),
            "status": self.status,
            "detail": self.detail,
            "observation": dict(self.observation),
            "digest": self.digest,
            "shrunk": None if self.shrunk is None else self.shrunk.as_dict(),
        }

    @property
    def minimal_params(self) -> dict:
        """The shrunk params (the original ones when shrinking failed)."""
        if self.shrunk is None:
            return dict(self.case.params)
        return dict(self.shrunk.params)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's outcome — and only that.

    ``jobs``, ``chunk`` and ``findings_path`` affect scheduling and
    reporting, never results: the campaign digest is pinned to
    ``(seed, budget, oracles)`` alone.
    """

    seed: int = 0
    budget: int = 200
    jobs: int | None = None
    oracles: tuple[str, ...] = tuple(DEFAULT_WEIGHTS)
    timeout_s: float = DEFAULT_TIMEOUT_S
    chunk: int = DEFAULT_CHUNK
    findings_path: str | None = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget cannot be negative")
        if self.chunk < 1:
            raise ValueError("chunk must be positive")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        unknown = sorted(set(self.oracles) - set(ORACLES))
        if unknown:
            raise ValueError(f"unknown oracles {unknown}; "
                             f"known: {sorted(ORACLES)}")
        if not self.oracles:
            raise ValueError("need at least one oracle")


@dataclass(frozen=True)
class CampaignReport:
    """The outcome of one campaign run."""

    config: CampaignConfig
    executed: int
    elapsed_s: float
    digest: str
    by_oracle: dict
    by_status: dict
    findings: tuple[Finding, ...]
    shrink: ShrinkStats

    @property
    def execs_per_s(self) -> float:
        return self.executed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "seed": self.config.seed,
            "budget": self.config.budget,
            "oracles": list(self.config.oracles),
            "executed": self.executed,
            "elapsed_s": round(self.elapsed_s, 3),
            "execs_per_s": round(self.execs_per_s, 2),
            "digest": self.digest,
            "by_oracle": dict(self.by_oracle),
            "by_status": dict(self.by_status),
            "findings": [finding.as_dict() for finding in self.findings],
            "shrink_steps": self.shrink.steps,
            "shrink_attempts": self.shrink.attempts,
        }


def _chunks(cases: Sequence[FuzzCase], size: int):
    for start in range(0, len(cases), size):
        yield cases[start:start + size]


def _shrink_finding(case: FuzzCase, status: str,
                    timeout_s: float) -> ShrinkOutcome | None:
    """Reduce one finding to a minimal repro, isolation as required.

    A ``fail``/``error`` predicate re-executes in this process (cheap,
    full :data:`SHRINK_ATTEMPTS` budget).  A ``crash``/``hang``
    predicate must probe in throwaway processes — expensive, so the
    budget drops to :data:`ISOLATED_SHRINK_ATTEMPTS`.
    """
    oracle = ORACLES[case.oracle]
    if status in ("fail", "error"):
        def still_fails(candidate: dict) -> bool:
            record = _execute_with_deadline(case.oracle, candidate,
                                            timeout_s)
            return record["status"] == status

        attempts = SHRINK_ATTEMPTS
    else:
        def still_fails(candidate: dict) -> bool:
            return _probe_isolated(case.oracle, candidate,
                                   min(timeout_s, 5.0)) == status

        attempts = ISOLATED_SHRINK_ATTEMPTS
    return shrink(dict(case.params), still_fails,
                  oracle.shrink_candidates, max_attempts=attempts)


def run_campaign(config: CampaignConfig,
                 progress: Callable[[str], None] | None = None
                 ) -> CampaignReport:
    """Run one seeded campaign to completion and shrink its findings."""
    emit = progress or (lambda message: None)
    runner = SweepRunner(jobs=config.jobs)
    cases = [generate_case(config.seed, index, config.oracles)
             for index in range(config.budget)]
    by_oracle: dict[str, int] = {}
    for case in cases:
        by_oracle[case.oracle] = by_oracle.get(case.oracle, 0) + 1
    by_status: dict[str, int] = {}
    findings: list[Finding] = []
    stats = ShrinkStats()
    case_digests: list[str] = []
    started = time.monotonic()
    with span("fuzz.campaign", seed=config.seed, budget=config.budget,
              jobs=config.jobs):
        executed = 0
        for chunk in _chunks(cases, config.chunk):
            jobs = [{**case.as_dict(), "timeout_s": config.timeout_s}
                    for case in chunk]
            guarded = runner.map_guarded(_run_case, jobs)
            for case, (channel, value) in zip(chunk, guarded):
                executed += 1
                if channel == "crash":
                    record = {"status": "crash", "detail": str(value)}
                else:
                    record = value
                status = record["status"]
                by_status[status] = by_status.get(status, 0) + 1
                case_digests.append(record.get("digest")
                                    or f"{status}:{case.index}")
                if status == "ok":
                    continue
                emit(f"finding: case {case.index} [{case.oracle}] "
                     f"{status}: {record.get('detail', '')}")
                shrunk = _shrink_finding(case, status, config.timeout_s)
                if shrunk is not None:
                    stats.add(case.oracle, shrunk)
                findings.append(Finding(
                    case=case, status=status,
                    detail=str(record.get("detail", "")),
                    observation=dict(record.get("observation", {})),
                    digest=record.get("digest"), shrunk=shrunk))
            emit(f"{executed}/{config.budget} cases, "
                 f"{len(findings)} findings")
        elapsed = time.monotonic() - started
        registry = metrics()
        for oracle, count in by_oracle.items():
            registry.counter(
                "repro_fuzz_cases_total",
                help="fuzz cases executed").inc(count, oracle=oracle)
        for status, count in by_status.items():
            if status != "ok":
                registry.counter(
                    "repro_fuzz_findings_total",
                    help="fuzz findings journaled").inc(count, status=status)
        if stats.steps:
            registry.counter(
                "repro_fuzz_shrink_steps_total",
                help="adopted shrink reductions").inc(stats.steps)
    digest = hashlib.sha256(
        "\n".join(case_digests).encode()).hexdigest()
    report = CampaignReport(config=config, executed=executed,
                            elapsed_s=elapsed, digest=digest,
                            by_oracle=by_oracle, by_status=by_status,
                            findings=tuple(findings), shrink=stats)
    if config.findings_path and findings:
        write_findings(Path(config.findings_path), report)
    return report


def write_findings(path: Path, report: CampaignReport) -> None:
    """Journal a campaign's findings as one JSONL record per finding."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for finding in report.findings:
            handle.write(json.dumps(finding.as_dict(), sort_keys=True)
                         + "\n")


def replay_params(oracle: str, params: dict) -> tuple[CaseResult, str]:
    """Re-execute a repro and return its result plus replay digest."""
    result = execute_params(oracle, params)
    return result, result_digest(oracle, params, result)


@dataclass(frozen=True)
class SelfTestReport:
    """What ``repro fuzz run --self-test`` observed."""

    found: bool
    shrunk_minimal: bool
    replay_identical: bool
    minimal_params: dict
    shrink_steps: int
    detail: str

    @property
    def passed(self) -> bool:
        return self.found and self.shrunk_minimal and self.replay_identical


def self_test(jobs: int | None = None, budget: int = 64,
              progress: Callable[[str], None] | None = None
              ) -> SelfTestReport:
    """Prove the harness end-to-end by hunting a known synthetic defect.

    Arms the ``codec-misdecode`` defect (an off-by-one decode rank that
    triggers only when ``n >= 12`` and ``n_symbols >= 24``), runs a
    codec-only campaign, and asserts the machinery (a) finds it, (b)
    shrinks it to exactly the trigger thresholds, and (c) replays the
    minimal repro bit-identically.
    """
    previous = os.environ.get(DEFECT_ENV)
    os.environ[DEFECT_ENV] = "codec-misdecode"
    try:
        report = run_campaign(
            CampaignConfig(seed=0, budget=budget, jobs=jobs,
                           oracles=("codec",)),
            progress=progress)
        hits = [finding for finding in report.findings
                if finding.status == "fail"]
        if not hits:
            return SelfTestReport(False, False, False, {}, 0,
                                  "campaign produced no findings — the "
                                  "injected defect went undetected")
        finding = hits[0]
        minimal = finding.minimal_params
        shrunk_ok = (int(minimal["n"]) == DEFECT_N_THRESHOLD
                     and int(minimal["n_symbols"])
                     == DEFECT_SYMBOLS_THRESHOLD)
        result, digest = replay_params("codec", minimal)
        again, digest_again = replay_params("codec", minimal)
        replay_ok = (result.status == "fail"
                     and digest == digest_again
                     and again.as_dict() == result.as_dict())
        steps = finding.shrunk.steps if finding.shrunk else 0
        detail = (f"{len(hits)} findings; minimal repro "
                  f"n={minimal.get('n')} n_symbols="
                  f"{minimal.get('n_symbols')} after {steps} shrink steps")
        return SelfTestReport(True, shrunk_ok, replay_ok,
                              minimal, steps, detail)
    finally:
        if previous is None:
            os.environ.pop(DEFECT_ENV, None)
        else:
            os.environ[DEFECT_ENV] = previous
