"""Differential and invariant oracles over the SmartVLC stack.

Each oracle owns one slice of the correctness surface and three
operations: ``generate`` (draw JSON-able params from a seeded
generator), ``execute`` (run the checks, fully deterministic in the
params), and ``shrink_candidates`` (one-step reductions for the
delta-debugging shrinker).  Executing the same params twice — in any
process, at any parallelism — produces the same :class:`CaseResult`
and therefore the same :func:`result_digest`; that is the bit-identical
replay contract behind ``repro fuzz replay``.

The oracles:

* ``codec`` — differential: the scalar combinadic codec
  (:func:`repro.core.encode_symbol` / :func:`~repro.core.decode_symbol`
  + :func:`repro.link.mac.corrupt_slots`) against the vectorized
  :class:`repro.sim.batch.BatchCodec` / :func:`~repro.sim.batch.
  corrupt_batch` on a shared random stream — encode, corruption, and
  decode (weight verdicts included) must agree bit-for-bit.
* ``roundtrip`` — invariant: CRC-16 round-trips, every single-bit
  corruption is detected, and a designed AMPPM frame decodes back to
  its payload through the real transmitter/receiver pair.
* ``design`` — invariant: every designed super-symbol satisfies the
  Type-I flicker bound, lands inside the illumination envelope
  (|achieved − target| ≤ τ_perceived), and a fresh designer fork
  reproduces it (the PR 6 memo-leak shape).
* ``serve`` — differential: the batched/coalesced serving path
  (:meth:`AdaptEngine.adapt_batch`) against the direct per-request
  path, canonical response bytes compared per request.
* ``journal`` — differential, over the multicell DES kernel: the
  sharded kernel at ``regions=1`` and the spatial index are
  bit-identical to the reference kernel, ``regions=R`` runs are
  replay-deterministic with shard merge as identity, under randomized
  grids, mobility, ambient profiles, and fault schedules.
* ``scenario`` — differential, over the scenario engine: a random
  small :class:`~repro.scenarios.dsl.Scenario` document round-trips
  the strict loader, replays digest-identically at ``regions=1`` with
  equal reports, matches the sharded machinery at one region
  bit-for-bit, and a ``regions=R`` run is replay-deterministic with
  handovers conserved against the reference — all without a single
  flicker violation.

A synthetic defect can be armed through the ``REPRO_FUZZ_DEFECT``
environment variable (``codec-misdecode``, ``crash``, ``hang``) — the
``--self-test`` harness and the crash-isolation tests use it to prove
the campaign machinery finds, survives, and shrinks real failures.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Protocol

import numpy as np

from .shrinker import shrink_float, shrink_int, shrink_list

#: Environment variable arming a synthetic defect (self-test / tests).
DEFECT_ENV = "REPRO_FUZZ_DEFECT"

#: The ``codec-misdecode`` defect triggers at exactly these thresholds;
#: the self-test asserts the shrinker recovers them.
DEFECT_N_THRESHOLD = 12
DEFECT_SYMBOLS_THRESHOLD = 24


def active_defect() -> str:
    """The armed synthetic defect ('' when none)."""
    return os.environ.get(DEFECT_ENV, "")


@dataclass(frozen=True)
class CaseResult:
    """The outcome of executing one fuzz case."""

    status: str                      # "ok" | "fail"
    detail: str = ""
    observation: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"status": self.status, "detail": self.detail,
                "observation": dict(self.observation)}


def _ok(**observation) -> CaseResult:
    return CaseResult("ok", observation=observation)


def _fail(detail: str, **observation) -> CaseResult:
    return CaseResult("fail", detail=detail, observation=observation)


def result_digest(oracle: str, params: Mapping, result: CaseResult) -> str:
    """SHA-256 over the canonical (oracle, params, result) encoding.

    Two executions reproduce bit-identically exactly when their digests
    agree — the identity ``repro fuzz replay`` checks.
    """
    payload = json.dumps(
        {"oracle": oracle, "params": dict(params),
         "result": result.as_dict()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class Oracle(Protocol):  # pragma: no cover - typing only
    name: str

    def generate(self, rng: np.random.Generator) -> dict: ...

    def execute(self, params: Mapping) -> CaseResult: ...

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]: ...


# -- shared per-process state ------------------------------------------
#
# Designer tables dominate setup (~80 ms) and are pure in the default
# SystemConfig, so worker processes build them once and oracles take
# fresh forks when memo isolation matters.

_SHARED: dict = {}


def _config():
    from ..core.params import SystemConfig

    if "config" not in _SHARED:
        _SHARED["config"] = SystemConfig()
    return _SHARED["config"]


def _designer():
    """The per-process template designer.

    Oracles must treat it as a *template*: candidate tables and the
    envelope are pure in the config and safe to share, but anything
    that touches the design memo goes through :meth:`fork` so a case's
    result is a function of its params, never of which cases this
    worker happened to run first (``design()`` answers within-bucket
    requests with the bucket owner's design by contract).
    """
    from ..core.ampdesign import AmppmDesigner

    if "designer" not in _SHARED:
        _SHARED["designer"] = AmppmDesigner(_config())
    return _SHARED["designer"]


def _sub_rng(rngseed: int, stream: int) -> np.random.Generator:
    """An execution stream derived purely from the params' seed."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(rngseed), spawn_key=(stream,)))


def _maybe_injected_crash(n: int) -> None:
    defect = active_defect()
    if defect == "crash" and n >= DEFECT_N_THRESHOLD:
        os._exit(17)  # a hard worker death, not an exception
    if defect == "hang" and n >= DEFECT_N_THRESHOLD:
        import time

        while True:  # pragma: no cover - interrupted by the case deadline
            time.sleep(0.05)


# -- codec: scalar vs batched combinadic walk --------------------------


class CodecOracle:
    """Scalar-vs-batched codec parity on a shared random stream."""

    name = "codec"

    def generate(self, rng: np.random.Generator) -> dict:
        n = int(rng.integers(4, 33))
        return {
            "n": n,
            "k": int(rng.integers(1, n)),
            "n_symbols": int(rng.integers(4, 97)),
            "p_off": round(float(rng.uniform(0.0, 0.25)), 6),
            "p_on": round(float(rng.uniform(0.0, 0.25)), 6),
            "rngseed": int(rng.integers(0, 2**31 - 1)),
        }

    def execute(self, params: Mapping) -> CaseResult:
        from ..core.coding import decode_symbol, encode_symbol
        from ..core.errormodel import SlotErrorModel
        from ..link.mac import corrupt_slots
        from ..sim.batch import BatchCodec, corrupt_batch

        n, k = int(params["n"]), int(params["k"])
        n_symbols = int(params["n_symbols"])
        _maybe_injected_crash(n)
        codec = BatchCodec(n, k)
        if not codec.supported:  # pragma: no cover - n<=63 always fits
            return _ok(skipped="int64 fallback")
        errors = SlotErrorModel(float(params["p_off"]), float(params["p_on"]))
        rngseed = int(params["rngseed"])
        values = _sub_rng(rngseed, 0).integers(0, codec.capacity,
                                               size=n_symbols)
        batch_rng = _sub_rng(rngseed, 1)
        scalar_rng = _sub_rng(rngseed, 1)

        sent = codec.encode_batch(values)
        scalar_sent = [encode_symbol(int(v), n, k) for v in values]
        if not np.array_equal(sent, np.array(scalar_sent, dtype=bool)):
            row = int(np.nonzero(
                (sent != np.array(scalar_sent, dtype=bool)).any(axis=1))[0][0])
            return _fail(f"encode parity: batch and scalar codewords "
                         f"diverge at symbol {row}")

        corrupted = corrupt_batch(sent, errors, batch_rng)
        scalar_corrupted = [corrupt_slots(list(row), errors, scalar_rng)
                            for row in scalar_sent]
        if not np.array_equal(corrupted,
                              np.array(scalar_corrupted, dtype=bool)):
            row = int(np.nonzero(
                (corrupted != np.array(scalar_corrupted, dtype=bool))
                .any(axis=1))[0][0])
            return _fail(f"corruption parity: random streams diverge "
                         f"at frame {row}")

        decoded, weight_ok = codec.decode_batch(corrupted)
        if (active_defect() == "codec-misdecode"
                and n >= DEFECT_N_THRESHOLD
                and n_symbols >= DEFECT_SYMBOLS_THRESHOLD):
            decoded = decoded.copy()
            decoded[0] += 1  # the injected defect: an off-by-one rank
        for i, row in enumerate(scalar_corrupted):
            scalar_weight = sum(row) == k
            if scalar_weight != bool(weight_ok[i]):
                return _fail(f"weight parity: verdicts diverge "
                             f"at symbol {i}")
            if scalar_weight and decode_symbol(row, k) != int(decoded[i]):
                return _fail(f"decode parity: ranks diverge at symbol {i}")
        wrong = int(np.count_nonzero(~weight_ok
                                     | (decoded != values)))
        checksum = hashlib.sha256(
            np.ascontiguousarray(decoded).tobytes()).hexdigest()[:16]
        return _ok(symbol_errors=wrong, decode_checksum=checksum)

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]:
        base = dict(params)
        for n_symbols in shrink_int(int(base["n_symbols"]), 1):
            yield {**base, "n_symbols": n_symbols}
        for n in shrink_int(int(base["n"]), 2):
            yield {**base, "n": n, "k": min(int(base["k"]), n - 1)}
        for k in shrink_int(int(base["k"]), 1):
            yield {**base, "k": k}
        for p in shrink_float(float(base["p_off"]), 0.0):
            yield {**base, "p_off": p}
        for p in shrink_float(float(base["p_on"]), 0.0):
            yield {**base, "p_on": p}
        for seed in shrink_int(int(base["rngseed"]), 0):
            yield {**base, "rngseed": seed}


# -- roundtrip: CRC + framed codec round-trips -------------------------


class RoundtripOracle:
    """CRC and frame round-trip invariants on arbitrary payloads."""

    name = "roundtrip"

    def generate(self, rng: np.random.Generator) -> dict:
        length = int(rng.integers(1, 49))
        payload = bytes(int(b) for b in rng.integers(0, 256, size=length))
        return {
            "payload_hex": payload.hex(),
            "flip_bit": int(rng.integers(0, (length + 2) * 8)),
            "dimming": round(float(rng.uniform(0.05, 0.95)), 4),
        }

    def execute(self, params: Mapping) -> CaseResult:
        from ..link.crc import append_crc, check_crc, crc16
        from ..link.frame import FrameError
        from ..link.receiver import Receiver
        from ..link.transmitter import Transmitter

        data = bytes.fromhex(str(params["payload_hex"]))
        if not data:
            return _fail("empty payload is not a valid case")
        tagged = append_crc(data)
        if not check_crc(tagged):
            return _fail("CRC round-trip: freshly tagged payload "
                         "fails its own check")
        flip = int(params["flip_bit"]) % (len(tagged) * 8)
        corrupted = bytearray(tagged)
        corrupted[flip // 8] ^= 1 << (flip % 8)
        if check_crc(bytes(corrupted)):
            return _fail(f"CRC blind spot: single-bit flip at bit {flip} "
                         f"goes undetected")

        # A forked designer for the same reason as DesignOracle: the
        # shared scheme's memo warms across cases, and a within-bucket
        # hit would make frame_slots depend on process history.
        from ..schemes import AmppmSchemeDesign

        dimming = _designer().clamp(float(params["dimming"]))
        design = AmppmSchemeDesign(_designer().fork().design(dimming),
                                   _config())
        slots = Transmitter(_config()).encode_frame(data, design)
        try:
            frame = Receiver(_config()).decode_frame(list(slots))
        except FrameError as exc:
            return _fail(f"frame round-trip: clean frame rejected ({exc})")
        if frame.payload != data:
            return _fail("frame round-trip: decoded payload differs")
        return _ok(crc=crc16(data), frame_slots=len(slots))

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]:
        base = dict(params)
        data = bytes.fromhex(str(base["payload_hex"]))
        for shorter in shrink_list(list(data)):
            if shorter:
                yield {**base, "payload_hex": bytes(shorter).hex()}
        if data:
            zeroed = bytes(len(data))
            if zeroed != data:
                yield {**base, "payload_hex": zeroed.hex()}
        for flip in shrink_int(int(base["flip_bit"]), 0):
            yield {**base, "flip_bit": flip}
        for dimming in shrink_float(float(base["dimming"]), 0.5):
            yield {**base, "dimming": dimming}


# -- design: flicker / envelope / memo-purity invariants ---------------


class DesignOracle:
    """Designer invariants at a randomized dimming request."""

    name = "design"

    def generate(self, rng: np.random.Generator) -> dict:
        return {"dimming": round(float(rng.uniform(0.001, 0.999)), 6)}

    def execute(self, params: Mapping) -> CaseResult:
        # Design on a fresh fork: the template's memo is warm with every
        # prior case this worker ran, and ``design()`` deliberately
        # answers within-bucket requests with the bucket owner's design
        # — correct for one consumer, but it would make this result a
        # function of process history instead of ``params``.
        designer = _designer().fork()
        config = _config()
        target = designer.clamp(float(params["dimming"]))
        design = designer.design(target)
        ss = design.super_symbol
        if not ss.flicker_free(config):
            return _fail(f"flicker bound violated by {ss} "
                         f"at dimming {target:.6f}")
        if design.dimming_error > config.tau_perceived + 1e-9:
            return _fail(f"illumination envelope: |achieved-target| = "
                         f"{design.dimming_error:.6f} exceeds "
                         f"tau_perceived {config.tau_perceived:g}")
        fresh = _designer().fork().design(target)
        if fresh.super_symbol != ss:
            return _fail("memo purity: a fresh designer fork produced "
                         "a different super-symbol")
        return _ok(n1=ss.first.n_slots, k1=ss.first.n_on, m1=ss.m1,
                   n2=ss.second.n_slots, k2=ss.second.n_on, m2=ss.m2,
                   achieved=round(design.achieved_dimming, 9))

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]:
        base = dict(params)
        for dimming in shrink_float(float(base["dimming"]), 0.5,
                                    decimals=(1, 2, 3, 4)):
            yield {**base, "dimming": dimming}


# -- serve: batched serving path vs the direct designer ----------------


class ServeOracle:
    """Served-vs-direct byte equality over randomized request mixes."""

    name = "serve"

    def generate(self, rng: np.random.Generator) -> dict:
        tau = _config().tau_perceived
        count = int(rng.integers(1, 10))
        requests: list[dict] = []
        for i in range(count):
            if requests and rng.random() < 0.35:
                # Stress duplicate memo buckets: jitter a prior request
                # within the perceived resolution (the PR 6 leak shape).
                donor = requests[int(rng.integers(0, len(requests)))]
                dimming = donor["dimming"] + float(
                    rng.uniform(-tau / 4, tau / 4))
            else:
                dimming = float(rng.uniform(0.02, 0.98))
            requests.append({
                "dimming": round(min(max(dimming, 0.001), 0.999), 6),
                "ambient": round(float(rng.uniform(0.0, 1.0)), 4),
                "distance_m": round(float(rng.uniform(0.5, 6.0)), 3),
                "angle_deg": round(float(rng.uniform(0.0, 75.0)), 2),
                "id": f"c{i}",
            })
        return {"requests": requests}

    def execute(self, params: Mapping) -> CaseResult:
        from ..serve.protocol import encode, ok_response, parse_request
        from ..serve.server import AdaptEngine

        raw = list(params["requests"])
        if not raw:
            return _fail("empty request list is not a valid case")
        requests = [parse_request({"v": 1, "op": "adapt", **r}) for r in raw]
        direct_engine = AdaptEngine(_config(), designer=_designer().fork())
        batch_engine = AdaptEngine(_config(), designer=_designer().fork())
        direct = [encode(ok_response("adapt",
                                     direct_engine.adapt_direct(r), r.id))
                  for r in requests]
        batched_payloads = batch_engine.adapt_batch(list(requests))
        batched = [encode(ok_response("adapt", payload, r.id))
                   for payload, r in zip(batched_payloads, requests)]
        for i, (a, b) in enumerate(zip(direct, batched)):
            if a != b:
                return _fail(f"served-vs-direct divergence at request {i}: "
                             f"batched reply differs from the direct "
                             f"designer answer")
        buckets = {direct_engine.bucket(r.dimming) for r in requests}
        replies_sha = hashlib.sha256(b"".join(direct)).hexdigest()[:16]
        return _ok(requests=len(requests), unique_buckets=len(buckets),
                   replies_sha=replies_sha)

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]:
        base = dict(params)
        requests = list(base["requests"])
        for fewer in shrink_list(requests):
            if fewer:
                yield {**base, "requests": fewer}
        rounded = [{**r, "dimming": round(float(r["dimming"]), 2)}
                   for r in requests]
        if rounded != requests:
            yield {**base, "requests": rounded}
        neutral = [{**r, "ambient": 1.0, "distance_m": 3.0, "angle_deg": 0.0}
                   for r in requests]
        if neutral != requests:
            yield {**base, "requests": neutral}


# -- journal: sharded DES kernel parity and determinism ----------------


class JournalOracle:
    """Multicell kernel differentials under randomized scenarios.

    Checks the invariants the sharded kernel actually guarantees:
    ``run_sharded`` at ``regions=1`` and the spatial-index path are
    bit-identical to the reference kernel; ``regions=R`` runs are
    same-seed deterministic with ``merge_journals`` as the identity on
    their shards and aggregate handovers matching the unsharded run.
    (``regions=R`` journals legitimately differ from ``regions=1`` in
    event interleaving — the conservative-lookahead rounds re-time
    boundary reports — so raw digest equality across R is *not* an
    invariant and is deliberately not asserted.)
    """

    name = "journal"

    def generate(self, rng: np.random.Generator) -> dict:
        rows = int(rng.integers(1, 4))
        cols = int(rng.integers(1, 4))
        if rows * cols < 2:
            cols = 2
        nodes = int(rng.integers(1, 4))
        duration = round(float(rng.uniform(2.0, 5.0)), 1)
        outages: list[list[float]] = []
        downtime: list[list] = []
        if rng.random() < 0.5:
            for _ in range(int(rng.integers(1, 3))):
                start = round(float(rng.uniform(0.0, 0.6)) * duration, 2)
                end = round(start + float(rng.uniform(0.2, 0.4)) * duration, 2)
                outages.append([start, end])
        if rng.random() < 0.4:
            for _ in range(int(rng.integers(1, 3))):
                node = f"node-{int(rng.integers(0, nodes)):02d}"
                start = round(float(rng.uniform(0.0, 0.6)) * duration, 2)
                end = round(start + float(rng.uniform(0.2, 0.4)) * duration, 2)
                downtime.append([node, start, end])
        return {
            "rows": rows,
            "cols": cols,
            "nodes": nodes,
            "duration": duration,
            "seed": int(rng.integers(0, 2**31 - 1)),
            "regions": int(rng.integers(2, min(4, rows * cols) + 1)),
            "ambient_kind": ("ramp" if rng.random() < 0.3 else "static"),
            "ambient_level": round(float(rng.uniform(0.05, 0.9)), 2),
        }| ({"outages": outages} if outages else {}) \
          | ({"downtime": downtime} if downtime else {})

    def _build(self, params: Mapping, **overrides):
        from ..lighting.ambient import BlindRampAmbient, StaticAmbient
        from ..net.multicell import default_network
        from ..resilience.faults import FaultPlan

        nodes = int(params["nodes"])
        known = {f"node-{i:02d}" for i in range(nodes)}
        duration = float(params["duration"])
        profile = (BlindRampAmbient(duration_s=duration)
                   if params.get("ambient_kind") == "ramp"
                   else StaticAmbient(float(params.get("ambient_level",
                                                       0.4))))
        plan = FaultPlan(
            node_downtime=tuple(
                (str(name), float(s), float(e))
                for name, s, e in params.get("downtime", ())
                if str(name) in known),
            uplink_outages=tuple((float(s), float(e))
                                 for s, e in params.get("outages", ())),
        )
        return default_network(rows=int(params["rows"]),
                               cols=int(params["cols"]),
                               n_nodes=nodes, seed=int(params["seed"]),
                               profile=profile, faults=plan, **overrides)

    def execute(self, params: Mapping) -> CaseResult:
        from ..net.sharded import merge_journals, run_sharded

        duration = float(params["duration"])
        reference = self._build(params).run(duration)
        degenerate = run_sharded(self._build(params), duration)
        if degenerate.journal.digest() != reference.journal.digest():
            return _fail("regions=1 degeneracy: the sharded machinery "
                         "at one region diverges from the reference "
                         "kernel")
        allpairs = self._build(params, use_spatial_index=False).run(duration)
        if allpairs.journal.digest() != reference.journal.digest():
            return _fail("spatial-index parity: culling changed the "
                         "journal")
        observation = {
            "digest": reference.journal.digest()[:16],
            "events": len(reference.journal),
            "handovers": reference.total_handovers,
        }
        regions = min(int(params["regions"]),
                      int(params["rows"]) * int(params["cols"]))
        if regions > 1:
            first = self._build(params, regions=regions).run(duration)
            second = self._build(params, regions=regions).run(duration)
            if first.journal.digest() != second.journal.digest():
                return _fail(f"sharded determinism: two regions={regions} "
                             f"replays disagree")
            merged = merge_journals(first.shards)
            if merged.digest() != first.journal.digest():
                return _fail("shard merge identity: merge_journals over "
                             "the shards is not the run's journal")
            if first.total_handovers != reference.total_handovers:
                return _fail(f"handover divergence: regions={regions} saw "
                             f"{first.total_handovers} handovers, the "
                             f"reference kernel {reference.total_handovers}")
            observation["sharded_digest"] = first.journal.digest()[:16]
        return _ok(**observation)

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]:
        base = dict(params)
        for duration in shrink_float(float(base["duration"]), 2.0,
                                     decimals=(0, 1)):
            if duration >= 1.0:
                yield {**base, "duration": duration}
        for nodes in shrink_int(int(base["nodes"]), 1):
            yield {**base, "nodes": nodes}
        for rows in shrink_int(int(base["rows"]), 1):
            yield {**base, "rows": rows,
                   "regions": min(int(base["regions"]),
                                  rows * int(base["cols"]))}
        for cols in shrink_int(int(base["cols"]), 1):
            yield {**base, "cols": cols,
                   "regions": min(int(base["regions"]),
                                  int(base["rows"]) * cols)}
        for key in ("outages", "downtime"):
            if base.get(key):
                for fewer in shrink_list(list(base[key])):
                    candidate = dict(base)
                    if fewer:
                        candidate[key] = fewer
                    else:
                        candidate.pop(key)
                    yield candidate
        if base.get("ambient_kind") == "ramp":
            yield {**base, "ambient_kind": "static"}
        for seed in shrink_int(int(base["seed"]), 0):
            yield {**base, "seed": seed}


# -- scenario: trace-driven scenario engine parity and invariants ------


class ScenarioOracle:
    """Scenario-engine differentials over randomized tiny buildings.

    The params carry a complete ``Scenario.to_dict`` document, so every
    case also exercises the strict loader: ``from_dict`` must accept it
    and ``to_dict`` must reproduce it exactly.  On top of that, the
    engine's replay contract: two ``regions=1`` runs journal
    bit-identically and fold to equal reports, the sharded machinery at
    one region matches the reference kernel digest-for-digest, and a
    ``regions=R`` run is replay-deterministic with handovers and report
    delivery conserved against the reference.  The adaptation planner's
    own guarantee — never a perceptible lighting step — is asserted as
    an invariant of every run.
    """

    name = "scenario"

    def generate(self, rng: np.random.Generator) -> dict:
        from ..scenarios.dsl import (
            ChaosSpec,
            DaylightSpec,
            OccupancySpec,
            RoomSpec,
            Scenario,
        )

        duration = round(float(rng.uniform(40.0, 90.0)), 1)
        tick = float(rng.choice((2.0, 3.0, 5.0)))
        rooms = []
        for index in range(int(rng.integers(1, 3))):
            daylight = DaylightSpec(
                sunrise_s=0.0,
                sunset_s=round(duration * float(rng.uniform(1.2, 2.5)), 1),
                peak_level=round(float(rng.uniform(0.3, 0.9)), 3),
                night_level=round(float(rng.uniform(0.0, 0.1)), 3),
                cloud_depth=round(float(rng.uniform(0.0, 0.6)), 3),
                cloud_time_scale_s=round(float(rng.uniform(10.0, 60.0)), 1),
                window_gain=round(float(rng.uniform(0.5, 1.0)), 3))
            occupancy = OccupancySpec(
                population=int(rng.integers(1, 3)),
                arrive_lo_s=0.0,
                arrive_hi_s=round(duration * 0.2, 1),
                depart_lo_s=round(duration * 0.6, 1),
                depart_hi_s=round(duration * 0.9, 1),
                pause_s=round(float(rng.uniform(0.0, 10.0)), 1))
            rooms.append(RoomSpec(
                id=f"room-{index}", rows=1,
                cols=int(rng.integers(1, 3)),
                spacing_m=round(float(rng.uniform(1.5, 3.5)), 2),
                daylight=daylight, occupancy=occupancy))
        chaos = (ChaosSpec(schedule="random",
                           intensity=round(float(rng.uniform(0.2, 0.8)), 3))
                 if rng.random() < 0.35 else None)
        scenario = Scenario(
            name="fuzz", rooms=tuple(rooms),
            seed=int(rng.integers(0, 2**31 - 1)),
            duration_s=duration, tick_s=tick,
            report_window_s=round(duration / 2.0, 1),
            chaos=chaos)
        limit = min(2, scenario.n_luminaires)
        return {"scenario": scenario.to_dict(),
                "regions": int(rng.integers(1, limit + 1))}

    def execute(self, params: Mapping) -> CaseResult:
        from ..net.sharded import run_sharded
        from ..scenarios.compiler import compile_scenario
        from ..scenarios.dsl import Scenario
        from ..scenarios.runner import ScenarioRunner

        document = dict(params["scenario"])
        scenario = Scenario.from_dict(document)
        if scenario.to_dict() != document:
            return _fail("DSL round-trip: from_dict(to_dict) is not "
                         "the identity on this document")
        first = ScenarioRunner(scenario).run()
        second = ScenarioRunner(scenario).run()
        if first.report.journal_digest != second.report.journal_digest:
            return _fail("scenario replay: two regions=1 runs journal "
                         "differently")
        if first.report.as_dict() != second.report.as_dict():
            return _fail("report determinism: equal journals folded to "
                         "different reports")
        sharded = run_sharded(compile_scenario(scenario).simulation,
                              scenario.duration_s)
        if sharded.journal.digest() != first.report.journal_digest:
            return _fail("regions=1 degeneracy: the sharded machinery "
                         "at one region diverges from the scenario run")
        flicker = sum(room.flicker_violations for room in first.report.rooms)
        if flicker:
            return _fail(f"flicker invariant: {flicker} perceptible "
                         f"lighting step(s) journalled at regions=1")
        observation = {
            "digest": first.report.journal_digest[:16],
            "events": len(first.result.journal),
            "handovers": first.result.total_handovers,
            "rooms": len(scenario.rooms),
            "population": scenario.population,
        }
        regions = min(int(params.get("regions", 1)), scenario.n_luminaires)
        if regions > 1:
            r_first = ScenarioRunner(scenario, regions=regions).run()
            r_second = ScenarioRunner(scenario, regions=regions).run()
            if (r_first.report.journal_digest
                    != r_second.report.journal_digest):
                return _fail(f"sharded determinism: two regions={regions} "
                             f"scenario replays disagree")
            if (r_first.result.total_handovers
                    != first.result.total_handovers):
                return _fail(f"handover divergence: regions={regions} saw "
                             f"{r_first.result.total_handovers} handovers, "
                             f"regions=1 {first.result.total_handovers}")
            r_metrics, metrics = r_first.result.metrics(), \
                first.result.metrics()
            for key in ("reports_delivered", "reports_lost"):
                if r_metrics[key] != metrics[key]:
                    return _fail(f"report-plane divergence: {key} differs "
                                 f"at regions={regions}")
            r_flicker = sum(room.flicker_violations
                            for room in r_first.report.rooms)
            if r_flicker:
                return _fail(f"flicker invariant: {r_flicker} perceptible "
                             f"lighting step(s) at regions={regions}")
            observation["sharded_digest"] = \
                r_first.report.journal_digest[:16]
        return _ok(**observation)

    def shrink_candidates(self, params: Mapping) -> Iterator[dict]:
        base = dict(params)
        document = dict(base["scenario"])
        rooms = list(document["rooms"])
        if len(rooms) > 1:
            for fewer in shrink_list(rooms):
                if fewer:
                    yield {**base,
                           "scenario": {**document, "rooms": fewer}}
        if document.get("chaos") is not None:
            yield {**base, "scenario": {**document, "chaos": None}}
        if int(base.get("regions", 1)) > 1:
            yield {**base, "regions": 1}
        for index, room in enumerate(rooms):
            occupancy = dict(room["occupancy"])
            if occupancy["population"] > 1:
                smaller = [dict(other) for other in rooms]
                smaller[index] = {**room, "occupancy":
                                  {**occupancy, "population": 1}}
                yield {**base,
                       "scenario": {**document, "rooms": smaller}}
            if int(room["cols"]) > 1:
                smaller = [dict(other) for other in rooms]
                smaller[index] = {**room, "cols": int(room["cols"]) - 1}
                yield {**base,
                       "scenario": {**document, "rooms": smaller}}
        for seed in shrink_int(int(document["seed"]), 0):
            yield {**base, "scenario": {**document, "seed": seed}}


#: The oracle registry, in presentation order.
ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (CodecOracle(), RoundtripOracle(), DesignOracle(),
                   ServeOracle(), JournalOracle(), ScenarioOracle())
}


def execute_params(oracle: str, params: Mapping) -> CaseResult:
    """Run one oracle on concrete params (the replay entry point)."""
    if oracle not in ORACLES:
        raise ValueError(f"unknown oracle {oracle!r}; "
                         f"known: {sorted(ORACLES)}")
    return ORACLES[oracle].execute(params)
