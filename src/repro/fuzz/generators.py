"""Seeded case generation over the modulation/scenario/fault space.

A fuzz campaign is a pure function of ``(campaign seed, budget, oracle
set)``.  Case ``i`` derives its generator from
``SeedSequence(entropy=seed, spawn_key=(i,))`` — exactly the child that
``SeedSequence(seed).spawn(budget)[i]`` would produce — so any single
case can be regenerated from its ``(seed, index)`` coordinates alone,
without replaying the campaign.  That is what makes a shrunk repro
artifact self-contained: the artifact stores the concrete ``params``
dict, and :func:`generate_case` can independently re-derive it.

The oracle mix is weighted: cheap invariant oracles (codec parity, CRC
round-trips, designer invariants) dominate the budget, while the
expensive differential oracle over the multicell DES kernel gets a
small, fixed share.  Weights are part of the campaign's determinism
contract — changing them reshuffles which case index lands on which
oracle, so they live here, next to the derivation rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .oracles import ORACLES

#: Relative budget share per oracle (normalized at draw time).
DEFAULT_WEIGHTS: Mapping[str, float] = {
    "codec": 0.28,
    "roundtrip": 0.19,
    "design": 0.19,
    "serve": 0.18,
    "journal": 0.08,
    "scenario": 0.08,
}


@dataclass(frozen=True)
class FuzzCase:
    """One concrete fuzz case: an oracle plus its JSON-able params."""

    seed: int
    index: int
    oracle: str
    params: dict

    def as_dict(self) -> dict:
        return {"seed": self.seed, "index": self.index,
                "oracle": self.oracle, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, obj: Mapping) -> "FuzzCase":
        for field_name in ("seed", "index", "oracle", "params"):
            if field_name not in obj:
                raise ValueError(f"fuzz case missing field {field_name!r}")
        oracle = obj["oracle"]
        if oracle not in ORACLES:
            raise ValueError(f"unknown oracle {oracle!r}; "
                             f"known: {sorted(ORACLES)}")
        if not isinstance(obj["params"], Mapping):
            raise ValueError("fuzz case params must be an object")
        return cls(seed=int(obj["seed"]), index=int(obj["index"]),
                   oracle=oracle, params=dict(obj["params"]))

    def canonical(self) -> str:
        """Canonical JSON (sorted keys) — the digest/replay identity."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))


def case_rng(seed: int, index: int) -> np.random.Generator:
    """The per-case generator: pure in ``(seed, index)``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


def _normalized_weights(oracles: Sequence[str]) -> np.ndarray:
    weights = np.array([DEFAULT_WEIGHTS.get(name, 0.1) for name in oracles],
                       dtype=float)
    return weights / weights.sum()


def generate_case(seed: int, index: int,
                  oracles: Sequence[str] | None = None) -> FuzzCase:
    """Case ``index`` of the campaign ``seed`` over an oracle subset."""
    names = tuple(oracles) if oracles is not None else tuple(DEFAULT_WEIGHTS)
    unknown = sorted(set(names) - set(ORACLES))
    if unknown:
        raise ValueError(f"unknown oracles {unknown}; "
                         f"known: {sorted(ORACLES)}")
    if not names:
        raise ValueError("need at least one oracle")
    rng = case_rng(seed, index)
    name = str(rng.choice(list(names), p=_normalized_weights(names)))
    params = ORACLES[name].generate(rng)
    return FuzzCase(seed=seed, index=index, oracle=name, params=params)


def generate_cases(seed: int, budget: int,
                   oracles: Sequence[str] | None = None,
                   start: int = 0) -> list[FuzzCase]:
    """Cases ``start .. start+budget`` of a campaign, in index order."""
    if budget < 0:
        raise ValueError("budget cannot be negative")
    return [generate_case(seed, index, oracles)
            for index in range(start, start + budget)]
