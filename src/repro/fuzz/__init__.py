"""``repro.fuzz`` — differential fuzzing over the SmartVLC stack.

The harness closes the loop the ROADMAP's "fuzz-driven exploration"
item asks for: seeded generation across the (modulation × geometry ×
ambient × fault-schedule) space (:mod:`.generators`), differential and
invariant oracles over every independently-optimized path in the
codebase (:mod:`.oracles`), crash-isolated parallel campaigns with a
jobs-independent digest (:mod:`.runner`), delta-debugging reduction of
failures to minimal deterministic repros (:mod:`.shrinker`), and a
replayed regression corpus (:mod:`.corpus`).

CLI surface: ``repro fuzz run | replay | corpus``.
"""

from .corpus import (DEFAULT_CORPUS_DIR, Artifact, ReplayOutcome,
                     iter_corpus, load_artifact, pin_artifact,
                     replay_artifact, replay_corpus, write_artifact)
from .generators import (DEFAULT_WEIGHTS, FuzzCase, case_rng,
                         generate_case, generate_cases)
from .oracles import (DEFECT_ENV, ORACLES, CaseResult, execute_params,
                      result_digest)
from .runner import (CampaignConfig, CampaignReport, Finding,
                     SelfTestReport, replay_params, run_campaign,
                     self_test, write_findings)
from .shrinker import (ShrinkOutcome, ShrinkStats, shrink, shrink_float,
                       shrink_int, shrink_list)

__all__ = [
    "DEFAULT_CORPUS_DIR", "Artifact", "ReplayOutcome", "iter_corpus",
    "load_artifact", "pin_artifact", "replay_artifact", "replay_corpus",
    "write_artifact",
    "DEFAULT_WEIGHTS", "FuzzCase", "case_rng", "generate_case",
    "generate_cases",
    "DEFECT_ENV", "ORACLES", "CaseResult", "execute_params",
    "result_digest",
    "CampaignConfig", "CampaignReport", "Finding", "SelfTestReport",
    "replay_params", "run_campaign", "self_test", "write_findings",
    "ShrinkOutcome", "ShrinkStats", "shrink", "shrink_float",
    "shrink_int", "shrink_list",
]
