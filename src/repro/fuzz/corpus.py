"""The regression corpus: shrunk repros replayed on every CI run.

A corpus artifact is one JSON file pinning a minimal repro and the
digest its replay must reproduce bit-identically:

.. code-block:: json

    {"v": 1, "oracle": "codec", "note": "why this case exists",
     "case": {"...": "oracle params"},
     "expect": {"status": "ok", "digest": "sha256..."}}

``expect.status`` is usually ``"ok"``: a corpus entry is a *fixed*
bug's minimal trigger (or a hand-picked boundary case), and replay
asserts the whole (params → result → digest) pipeline still lands on
the recorded bits.  An entry whose underlying defect has been fixed is
re-pinned to its new healthy digest rather than deleted — the shrunk
trigger keeps guarding the code path that once broke.

``repro fuzz corpus`` writes new artifacts from findings;
:func:`replay_corpus` (also ``repro fuzz replay``) checks a directory
of them, and the ``fuzz-smoke`` CI job fails on any drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from .oracles import ORACLES, execute_params, result_digest

#: Where the shipped regression corpus lives, relative to the repo root.
DEFAULT_CORPUS_DIR = Path("tests") / "fuzz" / "corpus"

ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class Artifact:
    """One corpus entry: oracle params plus the pinned expectation."""

    oracle: str
    params: dict
    expect_status: str
    expect_digest: str
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "v": ARTIFACT_VERSION,
            "oracle": self.oracle,
            "note": self.note,
            "case": dict(self.params),
            "expect": {"status": self.expect_status,
                       "digest": self.expect_digest},
        }

    @classmethod
    def from_dict(cls, obj: Mapping) -> "Artifact":
        if obj.get("v") != ARTIFACT_VERSION:
            raise ValueError(f"unsupported corpus artifact version "
                             f"{obj.get('v')!r}")
        oracle = obj.get("oracle")
        if oracle not in ORACLES:
            raise ValueError(f"unknown oracle {oracle!r}; "
                             f"known: {sorted(ORACLES)}")
        case = obj.get("case")
        if not isinstance(case, Mapping):
            raise ValueError("corpus artifact needs a 'case' object")
        expect = obj.get("expect")
        if (not isinstance(expect, Mapping) or "status" not in expect
                or "digest" not in expect):
            raise ValueError("corpus artifact needs expect.status "
                             "and expect.digest")
        return cls(oracle=str(oracle), params=dict(case),
                   expect_status=str(expect["status"]),
                   expect_digest=str(expect["digest"]),
                   note=str(obj.get("note", "")))


@dataclass(frozen=True)
class ReplayOutcome:
    """One artifact's replay verdict."""

    path: Path
    oracle: str
    matched: bool
    status: str
    digest: str
    expected_status: str
    expected_digest: str
    note: str = ""
    detail: str = ""

    def describe(self) -> str:
        verdict = "ok" if self.matched else "DRIFT"
        line = f"{verdict:>5}  {self.oracle:<9} {self.path.name}"
        if not self.matched:
            line += (f"  (got {self.status}/{self.digest[:12]}, "
                     f"expected {self.expected_status}/"
                     f"{self.expected_digest[:12]})")
            if self.detail:
                line += f" — {self.detail}"
        return line


def pin_artifact(oracle: str, params: Mapping, note: str = "") -> Artifact:
    """Execute params now and pin the observed status + digest."""
    result = execute_params(oracle, dict(params))
    return Artifact(oracle=oracle, params=dict(params),
                    expect_status=result.status,
                    expect_digest=result_digest(oracle, dict(params),
                                                result),
                    note=note)


def write_artifact(path: Path, artifact: Artifact) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact.as_dict(), indent=2,
                               sort_keys=True) + "\n", encoding="utf-8")


def load_artifact(path: Path) -> Artifact:
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: unreadable corpus artifact "
                         f"({exc})") from exc
    try:
        return Artifact.from_dict(obj)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def iter_corpus(directory: Path) -> Iterator[Path]:
    """Corpus files in name order (deterministic replay order)."""
    yield from sorted(directory.glob("*.json"))


def replay_artifact(path: Path) -> ReplayOutcome:
    """Replay one artifact and compare against its pinned expectation."""
    artifact = load_artifact(path)
    result = execute_params(artifact.oracle, artifact.params)
    digest = result_digest(artifact.oracle, artifact.params, result)
    matched = (result.status == artifact.expect_status
               and digest == artifact.expect_digest)
    return ReplayOutcome(path=path, oracle=artifact.oracle,
                         matched=matched, status=result.status,
                         digest=digest,
                         expected_status=artifact.expect_status,
                         expected_digest=artifact.expect_digest,
                         note=artifact.note, detail=result.detail)


def replay_corpus(directory: Path) -> list[ReplayOutcome]:
    """Replay every artifact under ``directory`` (non-recursive)."""
    return [replay_artifact(path) for path in iter_corpus(directory)]
