"""Delta-debugging reduction of failing fuzz cases to minimal repros.

A failing case is a JSON-able ``params`` dict; an oracle supplies a
*candidate pass* — a deterministic generator of one-step reductions of
those params (smaller integers, rounder floats, shorter lists).  The
greedy loop of :func:`shrink` repeatedly adopts the first candidate
that still fails, restarting the pass from the new current case, and
stops at a *fixed point*: a case none of whose candidates fails.

Two properties the test-suite pins:

* **Idempotence** — shrinking a minimal case is a no-op (zero steps),
  because the greedy loop's stopping condition is exactly minimality
  under the candidate pass.
* **Determinism** — candidates are generated in a fixed order and the
  first still-failing one wins, so the same failing case always
  reduces to the same minimal repro.

The building-block generators (:func:`shrink_int`, :func:`shrink_float`,
:func:`shrink_list`) are shared by every oracle's candidate pass; they
move values toward a declared floor by jumping there first, then
halving the distance, then stepping — the classic bisection ladder, so
a threshold-triggered defect shrinks to its exact threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence


def shrink_int(value: int, lo: int) -> Iterator[int]:
    """Candidate reductions of ``value`` toward the floor ``lo``.

    Yields the floor itself, then the bisection ladder between floor
    and value, then the single decrement — strictly increasing, all
    strictly below ``value``.  A defect guarded by ``value >= T``
    therefore shrinks to exactly ``T``.
    """
    if value <= lo:
        return
    yield lo
    seen = {lo}
    distance = value - lo
    while distance > 1:
        distance //= 2
        candidate = lo + distance
        if candidate not in seen and candidate < value:
            seen.add(candidate)
            yield candidate
    if value - 1 not in seen:
        yield value - 1


def shrink_float(value: float, target: float,
                 decimals: Sequence[int] = (1, 2, 3)) -> Iterator[float]:
    """Candidate reductions of a float: the target, then roundings."""
    if value != target:
        yield target
    seen = {target, value}
    for nd in decimals:
        candidate = round(value, nd)
        if candidate not in seen:
            seen.add(candidate)
            yield candidate


def shrink_list(items: Sequence[Any]) -> Iterator[list]:
    """Candidate reductions of a list: halves away, then one element away.

    The ddmin-style coarse-to-fine order: the empty list, then each
    half, then every single-element deletion.  Candidates are always
    strictly shorter than the input.
    """
    n = len(items)
    if n == 0:
        return
    yield []
    if n >= 2:
        half = n // 2
        yield list(items[half:])
        yield list(items[:half])
    if n >= 2:
        for i in range(n):
            yield [item for j, item in enumerate(items) if j != i]


@dataclass(frozen=True)
class ShrinkOutcome:
    """The result of one :func:`shrink` run."""

    params: dict
    steps: int
    attempts: int
    exhausted: bool = False

    def as_dict(self) -> dict:
        return {"params": self.params, "steps": self.steps,
                "attempts": self.attempts, "exhausted": self.exhausted}


@dataclass
class _Budget:
    remaining: int

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def shrink(params: dict,
           still_fails: Callable[[dict], bool],
           candidates: Callable[[dict], Iterable[dict]],
           max_attempts: int = 400) -> ShrinkOutcome:
    """Greedily reduce ``params`` while ``still_fails`` holds.

    ``candidates(current)`` yields one-step reductions in preference
    order; the first that still fails becomes the new current and the
    pass restarts.  Terminates when a full pass finds no failing
    candidate (the fixed point) or when ``max_attempts`` oracle
    executions have been spent (``exhausted=True`` — the repro is
    still failing, just maybe not minimal).

    ``still_fails`` is never called on ``params`` itself: the caller
    asserts the starting case fails.
    """
    if max_attempts < 0:
        raise ValueError("max_attempts cannot be negative")
    current = dict(params)
    steps = 0
    budget = _Budget(max_attempts)
    attempts_total = 0
    progress = True
    while progress:
        progress = False
        for candidate in candidates(current):
            if candidate == current:
                continue
            if not budget.spend():
                return ShrinkOutcome(current, steps,
                                     attempts_total, exhausted=True)
            attempts_total += 1
            if still_fails(candidate):
                current = dict(candidate)
                steps += 1
                progress = True
                break
    return ShrinkOutcome(current, steps, attempts_total)


@dataclass
class ShrinkStats:
    """Mutable tally a campaign folds per-finding shrink work into."""

    findings: int = 0
    steps: int = 0
    attempts: int = 0
    by_oracle: dict = field(default_factory=dict)

    def add(self, oracle: str, outcome: ShrinkOutcome) -> None:
        self.findings += 1
        self.steps += outcome.steps
        self.attempts += outcome.attempts
        self.by_oracle[oracle] = self.by_oracle.get(oracle, 0) + 1
