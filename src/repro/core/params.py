"""System-wide parameters of SmartVLC.

The values collected here are the ones the paper fixes in its Section 6
setup: the slot time imposed by the Philips LED's rise/fall speed
(t_slot = 8 us, i.e. f_tx = 125 kHz), the flicker-safe super-symbol
frequency found in the user study (f_th = 250 Hz, giving N_max = 500
slots per super-symbol), the measured per-slot detection error
probabilities (P1 = 9e-5 for an OFF decoded wrongly, P2 = 8e-5 for an
ON), the symbol-error-rate upper bound used to prune candidate symbol
patterns, and the perceived-domain adaptation step (tau_p = 0.003).

All experiments accept a :class:`SystemConfig` so every parameter can be
swept; the module-level :data:`DEFAULT_CONFIG` reproduces the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemConfig:
    """Operating parameters shared by the modulator, PHY and controller.

    Attributes:
        t_slot: Duration of one ON/OFF slot in seconds (paper: 8 us).
        f_flicker: Minimum brightness-repetition frequency in Hz that is
            guaranteed flicker-free (paper's user study: 250 Hz; the
            IEEE 802.15.7 floor is 200 Hz).
        p_off_error: Probability that an OFF slot is decoded as ON (P1).
        p_on_error: Probability that an ON slot is decoded as OFF (P2).
        ser_bound: Upper bound on the per-symbol error rate; patterns
            whose SER exceeds it are abandoned (paper Step 2).  The
            default 5.45e-3 is chosen so the candidate set supports the
            throughputs of the paper's Figs. 8-9 and 15 while the bound
            still visibly prunes the longest symbols, as in Fig. 8 (see
            DESIGN.md for why the paper's quoted 1e-3 is inconsistent
            with its own figures).
        n_min: Smallest symbol length considered.
        n_cap: Largest symbol length considered by the designer.  The
            frame header packs N in 6 bits, so n_cap must stay <= 63.
        m_cap: Largest per-pattern repeat count in a super-symbol; the
            header packs each count in 4 bits.
        tau_perceived: Maximum perceived-domain brightness step (on the
            0..1 scale) that no volunteer could detect (paper: 0.003).
        payload_bytes: Default MAC payload size (paper: 128 bytes).
        oversampling: Receiver samples per slot (paper: 500 kHz / 125 kHz).
        adc_bits: Receiver ADC resolution (TI ADS7883 is a 12-bit part).
    """

    t_slot: float = 8e-6
    f_flicker: float = 250.0
    p_off_error: float = 9e-5
    p_on_error: float = 8e-5
    ser_bound: float = 5.45e-3
    n_min: int = 2
    n_cap: int = 63
    m_cap: int = 15
    tau_perceived: float = 0.003
    payload_bytes: int = 128
    oversampling: int = 4
    adc_bits: int = 12

    def __post_init__(self) -> None:
        if self.t_slot <= 0:
            raise ValueError("t_slot must be positive")
        if self.f_flicker <= 0:
            raise ValueError("f_flicker must be positive")
        if not 0 <= self.p_off_error < 1 or not 0 <= self.p_on_error < 1:
            raise ValueError("slot error probabilities must lie in [0, 1)")
        if not 0 < self.ser_bound <= 1:
            raise ValueError("ser_bound must lie in (0, 1]")
        if self.n_min < 2:
            raise ValueError("n_min must be at least 2 (a symbol needs ON and OFF)")
        if self.n_cap < self.n_min:
            raise ValueError("n_cap must be >= n_min")
        if self.n_cap > 63:
            raise ValueError("n_cap must fit the 6-bit header field (<= 63)")
        if not 1 <= self.m_cap <= 15:
            raise ValueError("m_cap must fit the 4-bit header field (1..15)")
        if not 0 < self.tau_perceived < 1:
            raise ValueError("tau_perceived must lie in (0, 1)")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.oversampling < 1:
            raise ValueError("oversampling must be at least 1")
        if self.adc_bits < 1:
            raise ValueError("adc_bits must be at least 1")

    @property
    def f_tx(self) -> float:
        """Maximum ON/OFF toggle rate of the transmitter, 1 / t_slot."""
        return 1.0 / self.t_slot

    @property
    def n_max_super(self) -> int:
        """Maximum super-symbol length in slots before Type-I flicker.

        Eq. (4) of the paper: N_max = f_tx / f_th.  With the defaults
        this is 125 kHz / 250 Hz = 500 slots.
        """
        return max(1, math.floor(self.f_tx / self.f_flicker))

    @property
    def sample_rate(self) -> float:
        """Receiver sampling rate in Hz (oversampling x f_tx)."""
        return self.oversampling * self.f_tx

    def with_overrides(self, **changes: object) -> "SystemConfig":
        """Return a copy of this configuration with fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


DEFAULT_CONFIG = SystemConfig()
"""The configuration used throughout the paper's evaluation."""
