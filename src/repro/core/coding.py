"""Combinatorial-dichotomy MPPM encoder/decoder (Algorithms 1 and 2).

Classical pulse-position codecs map data to codewords through lookup
tables or constellation graphs; at N = 50, K = 25 that table would hold
C(50, 25) ≈ 1.26e14 entries (the paper's 126 TB example).  SmartVLC
instead walks the combinadic: at each slot the encoder compares the
remaining value against C(N-i, K-j) — the number of codewords that
place an ON here — and branches, so encoding and decoding are O(N)
big-integer operations with no table at all.

The paper's pseudocode fills the tail from ``iN + 1`` after the main
loop, which would leave slot ``iN`` unwritten because ``iN`` has already
advanced past the last slot the loop touched; we fill from ``iN``
(0-indexed: from the loop's exit position) instead, which is the
behaviour the accompanying prose describes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .combinatorics import binomial, bits_per_symbol, symbol_capacity
from .supersymbol import SuperSymbol
from .symbols import SymbolPattern


def encode_symbol(value: int, n: int, k: int) -> tuple[bool, ...]:
    """Encode ``value`` into an (n, k) codeword (Algorithm 1).

    ``value`` must be below 2**bits_per_symbol(n, k); the returned tuple
    has exactly ``n`` entries of which exactly ``k`` are True (ON).
    """
    capacity = symbol_capacity(n, k)
    if bits_per_symbol(n, k) == 0:
        raise ValueError(f"S({n},{k}) carries no data bits")
    if not 0 <= value < capacity:
        raise ValueError(
            f"value {value} out of range for S({n},{k}) (capacity {capacity})"
        )

    slots: list[bool] = []
    remaining = value
    ones_left = k
    zeros_left = n - k
    while ones_left > 0 and zeros_left > 0:
        with_on_here = binomial(ones_left + zeros_left - 1, ones_left - 1)
        if remaining >= with_on_here:
            slots.append(False)
            remaining -= with_on_here
            zeros_left -= 1
        else:
            slots.append(True)
            ones_left -= 1
    # One side is exhausted: the tail is forced.
    slots.extend([True] * ones_left)
    slots.extend([False] * zeros_left)
    return tuple(slots)


def decode_symbol(slots: Sequence[bool], k: int) -> int:
    """Decode an (n, k) codeword back to its value (Algorithm 2).

    ``k`` is known from the frame header; it is validated against the
    codeword so corrupted inputs fail loudly instead of aliasing.
    """
    n = len(slots)
    observed_k = sum(1 for s in slots if s)
    if observed_k != k:
        raise CodewordWeightError(n, k, observed_k)

    value = 0
    ones_left = k
    for i, slot in enumerate(slots):
        if ones_left == 0:
            break
        remaining = n - i - 1
        if remaining < ones_left:
            break  # tail is forced ONs
        if slot:
            ones_left -= 1
        else:
            value += binomial(remaining, ones_left - 1)
    return value


class CodewordWeightError(ValueError):
    """Raised when a codeword's ON count disagrees with the header."""

    def __init__(self, n: int, expected_k: int, observed_k: int):
        super().__init__(
            f"codeword of length {n} has {observed_k} ONs, expected {expected_k}"
        )
        self.n = n
        self.expected_k = expected_k
        self.observed_k = observed_k


class SymbolCodec:
    """Bit-stream codec for a fixed symbol pattern."""

    def __init__(self, pattern: SymbolPattern):
        if pattern.bits == 0:
            raise ValueError(f"{pattern} carries no data bits")
        self.pattern = pattern

    @property
    def bits(self) -> int:
        """Data bits consumed/produced per symbol."""
        return self.pattern.bits

    def encode(self, value: int) -> tuple[bool, ...]:
        """Encode one symbol's worth of data."""
        return encode_symbol(value, self.pattern.n_slots, self.pattern.n_on)

    def decode(self, slots: Sequence[bool]) -> int:
        """Decode one codeword; raises CodewordWeightError on corruption."""
        if len(slots) != self.pattern.n_slots:
            raise ValueError(
                f"expected {self.pattern.n_slots} slots, got {len(slots)}"
            )
        return decode_symbol(slots, self.pattern.n_on)


class SuperSymbolCodec:
    """Encode/decode a bit stream through AMPPM super-symbols.

    Bits are consumed most-significant-first, one constituent symbol at
    a time, in the super-symbol's transmission order (m1 symbols of the
    first pattern, then m2 of the second, repeating).  A stream may end
    mid-super-symbol: the final unit is truncated at a symbol boundary,
    so at most one *symbol* (not one super-symbol) of padding is ever
    transmitted.  Both sides derive the symbol walk from the frame
    header's bit count, so no extra signalling is needed.
    """

    def __init__(self, super_symbol: SuperSymbol):
        if super_symbol.bits == 0:
            raise ValueError("super-symbol carries no data bits")
        self.super_symbol = super_symbol
        self._codecs = [SymbolCodec(p) for p in super_symbol.symbols()]

    @property
    def bits(self) -> int:
        """Data bits per full super-symbol."""
        return self.super_symbol.bits

    @property
    def n_slots(self) -> int:
        """Slots per full super-symbol."""
        return self.super_symbol.n_slots

    def symbol_plan(self, n_bits: int) -> list[SymbolCodec]:
        """The symbol sequence that carries ``n_bits`` data bits."""
        if n_bits <= 0:
            return []
        plan: list[SymbolCodec] = []
        remaining = n_bits
        while remaining > 0:
            for codec in self._codecs:
                plan.append(codec)
                remaining -= codec.bits
                if remaining <= 0:
                    break
        return plan

    def slots_for_bits(self, n_bits: int) -> int:
        """Slots needed to carry ``n_bits`` data bits."""
        return sum(c.pattern.n_slots for c in self.symbol_plan(n_bits))

    def encode(self, bits: Sequence[int]) -> list[bool]:
        """Encode exactly one super-symbol's worth of bits into slots."""
        if len(bits) != self.bits:
            raise ValueError(f"expected {self.bits} bits, got {len(bits)}")
        slots, _ = self.encode_stream(bits)
        return slots

    def decode(self, slots: Sequence[bool]) -> list[int]:
        """Decode one full super-symbol's slots back into bits."""
        if len(slots) != self.n_slots:
            raise ValueError(f"expected {self.n_slots} slots, got {len(slots)}")
        return self.decode_stream(slots, self.bits)

    def encode_stream(self, bits: Iterable[int]) -> tuple[list[bool], int]:
        """Encode an arbitrary bit stream, zero-padding the final symbol.

        Returns the slot sequence and the number of padding bits added
        (the receiver drops them using the frame's length field).
        """
        buffered = list(bits)
        plan = self.symbol_plan(len(buffered))
        capacity = sum(c.bits for c in plan)
        padding = capacity - len(buffered)
        buffered.extend([0] * padding)
        slots: list[bool] = []
        cursor = 0
        for codec in plan:
            chunk = buffered[cursor:cursor + codec.bits]
            cursor += codec.bits
            value = 0
            for bit in chunk:
                value = (value << 1) | (1 if bit else 0)
            slots.extend(codec.encode(value))
        return slots, padding

    def decode_stream(self, slots: Sequence[bool],
                      n_bits: int | None = None) -> list[int]:
        """Decode a slot stream back to (at least) ``n_bits`` bits.

        When ``n_bits`` is omitted the stream must be a whole number of
        super-symbols.  Otherwise the symbol walk for ``n_bits`` is
        replayed and the padding bits of the final symbol are dropped.
        """
        if n_bits is None:
            if len(slots) % self.n_slots:
                raise ValueError(
                    f"slot count {len(slots)} is not a multiple of {self.n_slots}"
                )
            n_units = len(slots) // self.n_slots
            n_bits = n_units * self.bits
        plan = self.symbol_plan(n_bits)
        needed = sum(c.pattern.n_slots for c in plan)
        if len(slots) < needed:
            raise ValueError(f"need {needed} slots for {n_bits} bits, "
                             f"got {len(slots)}")
        bits: list[int] = []
        cursor = 0
        for codec in plan:
            n = codec.pattern.n_slots
            value = codec.decode(slots[cursor:cursor + n])
            cursor += n
            for shift in range(codec.bits - 1, -1, -1):
                bits.append((value >> shift) & 1)
        return bits[:n_bits]
