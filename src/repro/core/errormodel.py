"""Per-slot detection error model and the symbol error rate of Eq. (3).

The paper models the photodiode as a Poisson photon-counting detector
and characterises it by two numbers measured at the worst operating
point (3.6 m, strong ambient light):

* ``p_off_error`` (P1) — probability an OFF slot is decoded as ON;
* ``p_on_error``  (P2) — probability an ON slot is decoded as OFF.

A whole MPPM symbol decodes correctly only if every slot does, giving
Eq. (3):  PSER = 1 - (1 - P1)^(N-K) (1 - P2)^K.

Channel conditions (distance, incidence angle, ambient level) reach the
modulation layer as a :class:`SlotErrorModel`; :mod:`repro.phy.channel`
produces one from the physical link budget, while the constructors here
cover the paper's measured constants and ideal links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import SystemConfig


@dataclass(frozen=True)
class SlotErrorModel:
    """Probabilities of mis-detecting a single OFF or ON slot."""

    p_off_error: float
    p_on_error: float

    def __post_init__(self) -> None:
        for name, p in (("p_off_error", self.p_off_error), ("p_on_error", self.p_on_error)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {p}")

    @classmethod
    def ideal(cls) -> "SlotErrorModel":
        """A noiseless link: every slot decodes correctly."""
        return cls(0.0, 0.0)

    @classmethod
    def from_config(cls, config: SystemConfig) -> "SlotErrorModel":
        """The paper's measured worst-case constants (P1=9e-5, P2=8e-5)."""
        return cls(config.p_off_error, config.p_on_error)

    @classmethod
    def from_poisson_counts(cls, lambda_off: float, lambda_on: float,
                            threshold: float) -> "SlotErrorModel":
        """Derive slot error probabilities from Poisson photon counts.

        ``lambda_off``/``lambda_on`` are the expected photon counts per
        slot for an OFF (ambient only) and an ON (ambient + LED) slot;
        a slot is decoded as ON when the count exceeds ``threshold``.
        This is the photon-counting abstraction the paper cites [34].
        """
        if lambda_off < 0 or lambda_on < 0:
            raise ValueError("photon rates must be non-negative")
        if lambda_on < lambda_off:
            raise ValueError("lambda_on must be >= lambda_off")
        p1 = 1.0 - _poisson_cdf(threshold, lambda_off)   # OFF read as ON
        p2 = _poisson_cdf(threshold, lambda_on)          # ON read as OFF
        return cls(min(max(p1, 0.0), 1.0), min(max(p2, 0.0), 1.0))

    def symbol_error_rate(self, n: int, k: int) -> float:
        """PSER of an (n, k) symbol, Eq. (3) of the paper."""
        if k < 0 or k > n:
            raise ValueError(f"need 0 <= k <= n, got n={n} k={k}")
        ok_off = (1.0 - self.p_off_error) ** (n - k)
        ok_on = (1.0 - self.p_on_error) ** k
        return 1.0 - ok_off * ok_on

    def scaled(self, factor: float) -> "SlotErrorModel":
        """Return a model with both probabilities scaled (clipped to 1)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return SlotErrorModel(
            min(1.0, self.p_off_error * factor),
            min(1.0, self.p_on_error * factor),
        )


def _poisson_cdf(x: float, lam: float) -> float:
    """P[Poisson(lam) <= floor(x)], by direct summation.

    The photon counts in play are small (tens), so the direct sum is
    both exact enough and fast enough; for large lam it falls back to a
    normal approximation to avoid pathological loop lengths.
    """
    if lam == 0.0:
        return 1.0 if x >= 0 else 0.0
    kmax = math.floor(x)
    if kmax < 0:
        return 0.0
    if lam > 700 or kmax > 10000:
        # Normal approximation with continuity correction.
        z = (kmax + 0.5 - lam) / math.sqrt(lam)
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
    total = 0.0
    term = math.exp(-lam)
    for k in range(kmax + 1):
        if k > 0:
            term *= lam / k
        total += term
    return min(total, 1.0)
