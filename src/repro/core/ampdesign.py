"""The AMPPM designer: from a required dimming level to the best
super-symbol (Section 4.2, Steps 1-3).

Pipeline, exactly as the paper stages it:

1. *Step 1* — bound the super-symbol length by the Type-I flicker
   constraint, N_max = f_tx / f_th (Eq. (4)).
2. *Step 2* — enumerate symbol patterns S(N, K) and abandon every one
   whose symbol error rate exceeds the configured bound (Fig. 8).
3. *Step 3* — build the throughput envelope with the slope walk
   (Fig. 9) and, for a required dimming level, multiplex the two
   envelope vertices that bracket it into a super-symbol whose dimming
   level lands within the perceived resolution of the target.

Designs are cached per dimming level: the transmitter re-designs only
when the smart-lighting controller actually moves the setpoint, which
is the "reduce the number of brightness adjustments" concern of
Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .envelope import Envelope, slope_walk_envelope
from .errormodel import SlotErrorModel
from .params import SystemConfig
from .supersymbol import SuperSymbol, compose
from .symbols import SymbolPattern, candidate_patterns


@dataclass(frozen=True)
class AmppmDesign:
    """The outcome of one designer invocation."""

    target_dimming: float
    super_symbol: SuperSymbol

    @property
    def achieved_dimming(self) -> float:
        """Dimming level the chosen super-symbol actually produces."""
        return self.super_symbol.dimming

    @property
    def dimming_error(self) -> float:
        """|achieved - target|; bounded by the designer's tolerance."""
        return abs(self.achieved_dimming - self.target_dimming)

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        """Expected data bits per slot of the designed super-symbol."""
        return self.super_symbol.normalized_rate(errors)

    def data_rate(self, config: SystemConfig,
                  errors: SlotErrorModel | None = None) -> float:
        """Expected PHY data rate in bit/s."""
        return self.super_symbol.data_rate(config, errors)


class UnreachableDimmingError(ValueError):
    """Raised when a dimming level lies outside every candidate pattern."""

    def __init__(self, target: float, lo: float, hi: float):
        super().__init__(
            f"dimming level {target:.4f} outside the supported range "
            f"[{lo:.4f}, {hi:.4f}]"
        )
        self.target = target
        self.supported = (lo, hi)


class AmppmDesigner:
    """Stateful designer binding a configuration to a channel condition.

    The candidate set and envelope are built once; :meth:`design` is
    then a cheap bracket-and-compose per requested dimming level, with
    results memoised at the configured perceived resolution.
    """

    def __init__(self, config: SystemConfig | None = None,
                 errors: SlotErrorModel | None = None):
        self.config = config if config is not None else SystemConfig()
        self.errors = (errors if errors is not None
                       else SlotErrorModel.from_config(self.config))
        self._candidates = candidate_patterns(self.config, self.errors)
        if not self._candidates:
            raise ValueError(
                "no symbol pattern survives the SER bound; the channel is "
                "too noisy for MPPM at this configuration"
            )
        self._envelope = slope_walk_envelope(self._candidates, self.errors)
        self._cache: dict[int, AmppmDesign] = {}

    def fork(self) -> "AmppmDesigner":
        """A designer reusing this one's tables but with a fresh memo.

        Candidate filtering and envelope construction dominate setup
        and are pure in ``(config, errors)``, so forks share them.  The
        design memo is deliberately *not* shared: its key quantizes the
        dimming request to the perceived resolution, so a shared memo
        would hand one consumer's design to another whose request
        differs within a bucket.  Independent consumers (e.g. the
        per-cell lighting controllers of a fleet) fork one template
        designer and stay bit-identical to fully independent ones.
        """
        other = object.__new__(type(self))
        other.config = self.config
        other.errors = self.errors
        other._candidates = self._candidates
        other._envelope = self._envelope
        other._cache = {}
        return other

    @property
    def candidates(self) -> list[SymbolPattern]:
        """Patterns surviving Steps 1-2 (copy; the designer's set is fixed)."""
        return list(self._candidates)

    @property
    def envelope(self) -> Envelope:
        """The slope-walk throughput envelope over the candidates."""
        return self._envelope

    @property
    def supported_range(self) -> tuple[float, float]:
        """Dimming levels the designer can serve without compensation."""
        return self._envelope.dimming_range

    def memo_key(self, dimming: float) -> int:
        """The memo bucket a dimming request quantizes to.

        Two requests share a design exactly when their clamped dimming
        levels round to the same multiple of the perceived resolution
        ``tau_perceived`` — the same key :meth:`design` memoises under.
        Exposed so batching layers (the serve coalescer) can dedupe
        requests without re-deriving the quantization rule.
        """
        lo, hi = self.supported_range
        return round(min(max(dimming, lo), hi) / self.config.tau_perceived)

    def design(self, dimming: float) -> AmppmDesign:
        """Best super-symbol for a required dimming level.

        Raises :class:`UnreachableDimmingError` outside the supported
        range — the caller decides whether to clamp (the smart-lighting
        controller does, because an LED pinned at 2% cannot modulate).
        """
        lo, hi = self.supported_range
        if not lo - 1e-9 <= dimming <= hi + 1e-9:
            raise UnreachableDimmingError(dimming, lo, hi)
        dimming = min(max(dimming, lo), hi)

        key = self.memo_key(dimming)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        left, right = self._envelope.bracket(dimming)
        if left is right or _close(dimming, left.dimming):
            super_symbol = SuperSymbol.single(left.pattern)
        elif _close(dimming, right.dimming):
            super_symbol = SuperSymbol.single(right.pattern)
        else:
            try:
                super_symbol = compose(left.pattern, right.pattern, dimming,
                                       self.config)
            except ValueError:
                # The envelope vertices are too far apart to mix at the
                # required resolution under the repeat-count/flicker
                # caps (this happens near the dimming extremes, where
                # hull segments are long).  Trade rate for resolution:
                # search bracketing candidate pairs off the envelope.
                super_symbol = self._compose_fallback(dimming)
        design = AmppmDesign(dimming, super_symbol)
        self._cache[key] = design
        return design

    def design_many(self, dimmings: Sequence[float]) -> list[AmppmDesign]:
        """Designs for a batch of dimming levels, one core call per bucket.

        The batched entry point of the serving path: requests are
        deduped by :meth:`memo_key`, the designer core runs once per
        *unique* bucket (memo hits are free), and the resulting designs
        fan back out aligned with ``dimmings``.  Every request in a
        bucket receives the *same* :class:`AmppmDesign` object, so the
        fan-out is byte-identical by construction.  Raises
        :class:`UnreachableDimmingError` on the first out-of-range
        request, before any design is computed, and :class:`ValueError`
        on an empty batch — a caller holding zero requests has a bug
        upstream (the serving coalescer never flushes an empty window),
        and silently returning ``[]`` would mask it.
        """
        if len(dimmings) == 0:
            raise ValueError("design_many needs at least one dimming "
                             "level; an empty batch is a caller bug")
        lo, hi = self.supported_range
        for dimming in dimmings:
            if not lo - 1e-9 <= dimming <= hi + 1e-9:
                raise UnreachableDimmingError(dimming, lo, hi)
        by_bucket: dict[int, AmppmDesign] = {}
        out: list[AmppmDesign] = []
        for dimming in dimmings:
            key = self.memo_key(dimming)
            design = by_bucket.get(key)
            if design is None:
                design = self.design(dimming)
                by_bucket[key] = design
            out.append(design)
        return out

    def _compose_fallback(self, dimming: float) -> SuperSymbol:
        """Best-rate composition from non-envelope candidate pairs.

        Considers the nearest candidates on each side of the target,
        ordered by the rate their mix would achieve, and returns the
        first pair that reaches the target within the perceived
        resolution.  Smaller-N patterns allow larger repeat counts and
        therefore finer mixing granularity.
        """
        below = sorted((p for p in self._candidates if p.dimming <= dimming),
                       key=lambda p: dimming - p.dimming)[:24]
        above = sorted((p for p in self._candidates if p.dimming >= dimming),
                       key=lambda p: p.dimming - dimming)[:24]
        if not below or not above:
            lo, hi = self.supported_range
            raise UnreachableDimmingError(dimming, lo, hi)

        def mixed_rate(pair: tuple[SymbolPattern, SymbolPattern]) -> float:
            first, second = pair
            span = second.dimming - first.dimming
            if span <= 0:
                return min(first.normalized_rate(self.errors),
                           second.normalized_rate(self.errors))
            w = (dimming - first.dimming) / span
            return ((1.0 - w) * first.normalized_rate(self.errors)
                    + w * second.normalized_rate(self.errors))

        pairs = sorted(
            ((lo_p, hi_p) for lo_p in below for hi_p in above),
            key=mixed_rate, reverse=True)
        for first, second in pairs:
            try:
                return compose(first, second, dimming, self.config)
            except ValueError:
                continue
        raise UnreachableDimmingError(dimming, *self.supported_range)

    def clamp(self, dimming: float) -> float:
        """Nearest supported dimming level to the request."""
        lo, hi = self.supported_range
        return min(max(dimming, lo), hi)

    def design_clamped(self, dimming: float) -> AmppmDesign:
        """Like :meth:`design` but clamps out-of-range requests."""
        return self.design(self.clamp(dimming))


def _close(a: float, b: float, eps: float = 1e-9) -> bool:
    return abs(a - b) <= eps
