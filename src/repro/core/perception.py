"""Human brightness perception and flicker thresholds (Sections 2.2, 4.3).

The eye's response to light intensity is non-linear: in the dark the
pupil opens and small absolute changes become visible.  The paper uses
the IESNA handbook relationship between measured brightness Im and
perceived brightness Ip (both on a 0-100 scale):

    Ip = 100 * sqrt(Im / 100)

This module works on the normalized 0..1 scale where the relationship
collapses to ``ip = sqrt(im)``; percent-scale helpers are provided for
direct comparison with the paper's plots (Fig. 10).

Flicker comes in two types (Section 2.2): Type-I is a slow ON/OFF
repetition (guarded by the f_th >= 250 Hz super-symbol bound) and
Type-II is a perceptible step in average intensity (guarded by the
perceived step bound tau_p = 0.003 found in the Table 2 user study).
"""

from __future__ import annotations

import math


def to_perceived(measured: float) -> float:
    """Perceived brightness on 0..1 from measured brightness on 0..1.

    A float epsilon of slack is tolerated at both ends: interpolated
    trajectories routinely land at -1e-17 or 1+1e-16.
    """
    if not -1e-9 <= measured <= 1.0 + 1e-9:
        raise ValueError(f"measured brightness must lie in [0, 1], got {measured}")
    return math.sqrt(min(max(measured, 0.0), 1.0))


def to_measured(perceived: float) -> float:
    """Measured brightness on 0..1 from perceived brightness on 0..1."""
    if not -1e-9 <= perceived <= 1.0 + 1e-9:
        raise ValueError(f"perceived brightness must lie in [0, 1], got {perceived}")
    return min(max(perceived, 0.0), 1.0) ** 2


def to_perceived_percent(measured_percent: float) -> float:
    """The paper's formula verbatim: Ip = 100 * sqrt(Im / 100)."""
    return 100.0 * to_perceived(measured_percent / 100.0)


def to_measured_percent(perceived_percent: float) -> float:
    """Inverse of :func:`to_perceived_percent`."""
    return 100.0 * to_measured(perceived_percent / 100.0)


def perceived_step(measured_from: float, measured_to: float) -> float:
    """Magnitude of the perceived change of a measured-domain move."""
    return abs(to_perceived(measured_to) - to_perceived(measured_from))


def measured_step_for(measured_at: float, perceived_delta: float) -> float:
    """Measured-domain increment producing a given perceived increment.

    Starting at ``measured_at`` and moving up, returns the measured step
    whose perceived magnitude equals ``perceived_delta``.  This is the
    variable tau of Fig. 10(b): large when the LED is bright, tiny when
    it is dim.
    """
    if perceived_delta < 0:
        raise ValueError("perceived_delta must be non-negative")
    target = min(to_perceived(measured_at) + perceived_delta, 1.0)
    return to_measured(target) - measured_at


def is_type2_flicker_free(measured_from: float, measured_to: float,
                          tau_perceived: float) -> bool:
    """True when a single intensity move stays under the Type-II bound."""
    return perceived_step(measured_from, measured_to) <= tau_perceived + 1e-12


def is_type1_flicker_free(repetition_hz: float, f_flicker: float) -> bool:
    """True when a brightness pattern repeats fast enough to fuse."""
    return repetition_hz >= f_flicker
