"""Throughput envelope over candidate symbol patterns (Fig. 9).

Multiplexing two patterns yields a super-symbol whose (dimming,
normalized rate) point lies on the straight segment between the two
patterns' points, weighted by slot share.  The best achievable rate at
every dimming level is therefore the *upper concave envelope* of the
candidate point set, and the best super-symbol at a target level mixes
the two envelope vertices bracketing it — which is exactly why the
paper needs at most two distinct patterns per super-symbol.

The paper finds the envelope with a slope walk (Section 4.2, Step 3):
start from the best pattern near l = 0.5, then repeatedly hop to the
point that minimises the connecting slope on the right (and, mirrored,
maximises it on the left).  That walk is implemented verbatim in
:func:`slope_walk_envelope`; :func:`upper_concave_envelope` is the
classical monotone-chain hull used as the ablation reference — the two
must and do agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .errormodel import SlotErrorModel
from .symbols import SymbolPattern


@dataclass(frozen=True)
class EnvelopePoint:
    """A candidate pattern with its plotted coordinates."""

    pattern: SymbolPattern
    dimming: float
    rate: float


@dataclass(frozen=True)
class Envelope:
    """The upper concave envelope: vertices sorted by dimming level."""

    points: tuple[EnvelopePoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("an envelope needs at least one vertex")
        dims = [p.dimming for p in self.points]
        if any(b <= a for a, b in zip(dims, dims[1:])):
            raise ValueError("envelope vertices must be strictly increasing in dimming")

    @property
    def dimming_range(self) -> tuple[float, float]:
        """Lowest and highest dimming level the envelope covers."""
        return self.points[0].dimming, self.points[-1].dimming

    def rate_at(self, dimming: float) -> float:
        """Envelope height (normalized rate) at a dimming level.

        Linear interpolation between the bracketing vertices; outside
        the covered range the envelope is undefined and this raises.
        """
        left, right = self.bracket(dimming)
        if left is right:
            return left.rate
        span = right.dimming - left.dimming
        w = (dimming - left.dimming) / span
        return left.rate * (1.0 - w) + right.rate * w

    def bracket(self, dimming: float) -> tuple[EnvelopePoint, EnvelopePoint]:
        """The pair of vertices whose segment covers ``dimming``."""
        lo, hi = self.dimming_range
        if not lo <= dimming <= hi:
            raise ValueError(
                f"dimming {dimming:.4f} outside envelope range [{lo:.4f}, {hi:.4f}]"
            )
        for left, right in zip(self.points, self.points[1:]):
            if left.dimming <= dimming <= right.dimming:
                return left, right
        last = self.points[-1]
        return last, last

    def vertices(self) -> list[SymbolPattern]:
        """The symbol patterns sitting on the envelope."""
        return [p.pattern for p in self.points]


def score_points(patterns: Sequence[SymbolPattern],
                 errors: SlotErrorModel | None = None) -> list[EnvelopePoint]:
    """Project patterns onto the (dimming, normalized rate) plane.

    When several patterns share a dimming level only the best-rate one
    is kept (ties towards the shorter symbol, which has lower SER risk
    and restarts the flicker cycle sooner).
    """
    best: dict[float, EnvelopePoint] = {}
    for pattern in patterns:
        point = EnvelopePoint(pattern, pattern.dimming,
                              pattern.normalized_rate(errors))
        key = round(point.dimming, 12)
        incumbent = best.get(key)
        if (incumbent is None
                or point.rate > incumbent.rate
                or (point.rate == incumbent.rate
                    and pattern.n_slots < incumbent.pattern.n_slots)):
            best[key] = point
    return sorted(best.values(), key=lambda p: p.dimming)


def slope_walk_envelope(patterns: Sequence[SymbolPattern],
                        errors: SlotErrorModel | None = None) -> Envelope:
    """The paper's slope-based envelope construction.

    1. Anchor at the highest-rate point (the paper looks "around 0.5"
       because that is where the maximum always sits for MPPM capacity).
    2. Walking right, repeatedly pick the point minimising the slope of
       the connecting segment; ties go to the farther point so collinear
       runs collapse into one segment.
    3. Walking left, symmetrically maximise the slope.
    """
    points = score_points(patterns, errors)
    if not points:
        raise ValueError("no candidate patterns to build an envelope from")
    anchor = max(points, key=lambda p: (p.rate, -abs(p.dimming - 0.5)))

    # Right of the anchor the envelope descends: the hull edge out of the
    # current vertex is the segment of *largest* slope (the "smallest"
    # slope of the paper's wording refers to its magnitude).  Collinear
    # ties go to the farthest point so interior points collapse away.
    right: list[EnvelopePoint] = []
    current = anchor
    while True:
        ahead = [p for p in points if p.dimming > current.dimming]
        if not ahead:
            break
        base = current
        current = max(
            ahead,
            key=lambda p: ((p.rate - base.rate) / (p.dimming - base.dimming),
                           p.dimming),
        )
        right.append(current)

    # Mirrored on the left: minimise the slope, ties to the farthest
    # (smallest dimming) point.
    left: list[EnvelopePoint] = []
    current = anchor
    while True:
        behind = [p for p in points if p.dimming < current.dimming]
        if not behind:
            break
        base = current
        current = min(
            behind,
            key=lambda p: ((p.rate - base.rate) / (p.dimming - base.dimming),
                           p.dimming),
        )
        left.append(current)

    ordered = list(reversed(left)) + [anchor] + right
    return Envelope(tuple(ordered))


def upper_concave_envelope(patterns: Sequence[SymbolPattern],
                           errors: SlotErrorModel | None = None) -> Envelope:
    """Reference construction: monotone-chain upper hull.

    Used by the ablation benchmark to validate the slope walk; both
    constructions must return the same vertex chain.
    """
    points = score_points(patterns, errors)
    if not points:
        raise ValueError("no candidate patterns to build an envelope from")
    hull: list[EnvelopePoint] = []
    for point in points:
        while len(hull) >= 2 and _turns_left_or_straight(hull[-2], hull[-1], point):
            hull.pop()
        hull.append(point)
    return Envelope(tuple(hull))


def _turns_left_or_straight(a: EnvelopePoint, b: EnvelopePoint,
                            c: EnvelopePoint) -> bool:
    """True when b lies on or under segment a-c (so b is not a vertex)."""
    cross = ((b.dimming - a.dimming) * (c.rate - a.rate)
             - (b.rate - a.rate) * (c.dimming - a.dimming))
    return cross >= 0.0
