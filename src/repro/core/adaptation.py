"""Flicker-free adaptation of the LED intensity (Section 4.3, Fig. 10).

When the ambient light moves, the LED must travel to a new intensity
without any single step being perceptible (Type-II flicker) and — for
hardware lifespan and designer overhead — in as few steps as possible.

Two step planners are provided:

* :func:`plan_measured_steps` — the *existing method*: a fixed step in
  the measured domain.  To be flicker-safe everywhere it must use the
  step that is safe at the darkest intensity of the operating range,
  which wastes steps whenever the LED is bright.
* :func:`plan_perceived_steps` — SmartVLC's method: a fixed step tau_p
  in the *perceived* domain, i.e. a variable measured step that grows
  with intensity.  Same flicker guarantee, roughly half the steps on
  the paper's dynamic scenario (Fig. 19(c)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .perception import (
    measured_step_for,
    perceived_step,
    to_measured,
    to_perceived,
)


@dataclass(frozen=True)
class AdaptationPlan:
    """A flicker-free trajectory from one measured intensity to another.

    ``levels`` holds every intermediate measured intensity *including*
    the final target but excluding the starting point, so ``len(levels)``
    is the number of brightness adjustments the hardware performs.
    """

    start: float
    target: float
    levels: tuple[float, ...]

    @property
    def n_steps(self) -> int:
        """Number of brightness adjustments."""
        return len(self.levels)

    @property
    def max_perceived_step(self) -> float:
        """Largest perceived jump along the trajectory."""
        worst = 0.0
        previous = self.start
        for level in self.levels:
            worst = max(worst, perceived_step(previous, level))
            previous = level
        return worst

    def is_flicker_safe(self, tau_perceived: float,
                        tolerance: float = 1e-12) -> bool:
        """Whether no step along the trajectory exceeds the Type-II bound."""
        if tau_perceived <= 0:
            raise ValueError("tau_perceived must be positive")
        return self.max_perceived_step <= tau_perceived + tolerance

    def __iter__(self):
        return iter(self.levels)


def _validate_intensities(start: float, target: float) -> None:
    for name, value in (("start", start), ("target", target)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} intensity must lie in [0, 1], got {value}")


def plan_perceived_steps(start: float, target: float,
                         tau_perceived: float) -> AdaptationPlan:
    """SmartVLC's planner: uniform steps of tau_p in the perceived domain.

    The measured-domain step is variable (Fig. 10(b)): each intermediate
    level is the measured image of an evenly spaced perceived level, so
    every step is exactly at — never over — the perception bound.
    """
    _validate_intensities(start, target)
    if tau_perceived <= 0:
        raise ValueError("tau_perceived must be positive")
    p_start = to_perceived(start)
    p_target = to_perceived(target)
    span = p_target - p_start
    n_steps = max(1, math.ceil(abs(span) / tau_perceived)) if span else 0
    levels = []
    for i in range(1, n_steps + 1):
        p = p_start + span * i / n_steps
        levels.append(to_measured(p))
    if levels:
        levels[-1] = target  # kill the round-trip float residue
    return AdaptationPlan(start, target, tuple(levels))


def plan_measured_steps(start: float, target: float, tau_measured: float) -> AdaptationPlan:
    """The existing method: uniform steps in the measured domain."""
    _validate_intensities(start, target)
    if tau_measured <= 0:
        raise ValueError("tau_measured must be positive")
    span = target - start
    n_steps = max(1, math.ceil(abs(span) / tau_measured)) if span else 0
    levels = []
    for i in range(1, n_steps + 1):
        levels.append(start + span * i / n_steps)
    if levels:
        levels[-1] = target
    return AdaptationPlan(start, target, tuple(levels))


def safe_measured_tau(range_min: float, tau_perceived: float) -> float:
    """Largest fixed measured-domain step flicker-safe over a range.

    A fixed measured step is most visible at the dark end of the
    operating range, so the existing method must size its step there:
    the returned tau produces exactly a tau_p perceived change when
    taken at ``range_min``.
    """
    if not 0.0 <= range_min < 1.0:
        raise ValueError("range_min must lie in [0, 1)")
    return measured_step_for(range_min, tau_perceived)


@dataclass
class Adapter:
    """Incremental adaptation driver used by the lighting controller.

    Tracks the LED's current measured intensity and, for each new
    target, emits the flicker-free step sequence and counts the
    adjustments performed — the quantity plotted in Fig. 19(c).
    """

    tau_perceived: float
    intensity: float = 1.0
    use_perception_domain: bool = True
    range_min: float = 0.0
    adjustments: int = 0
    #: the most recent plan executed by :meth:`retarget` (None initially)
    last_plan: AdaptationPlan | None = None

    def retarget(self, target: float) -> AdaptationPlan:
        """Plan and 'execute' a move to ``target``, updating state."""
        if self.use_perception_domain:
            plan = plan_perceived_steps(self.intensity, target, self.tau_perceived)
        else:
            tau_m = safe_measured_tau(self.range_min, self.tau_perceived)
            plan = plan_measured_steps(self.intensity, target, tau_m)
        self.adjustments += plan.n_steps
        self.intensity = target
        self.last_plan = plan
        return plan
