"""The paper's primary contribution: AMPPM and its supporting pieces.

Public surface:

* :class:`SystemConfig` / :data:`DEFAULT_CONFIG` — operating parameters.
* :class:`SymbolPattern`, :class:`SuperSymbol` — the modulation units.
* :class:`SlotErrorModel` — channel error abstraction (Eq. (3)).
* :class:`AmppmDesigner` / :class:`AmppmDesign` — dimming level → best
  super-symbol (Steps 1-3 of Section 4.2).
* :func:`encode_symbol` / :func:`decode_symbol` and the codec classes —
  the combinatorial-dichotomy Algorithms 1-2.
* envelope, perception and adaptation helpers.
"""

from .adaptation import (
    AdaptationPlan,
    Adapter,
    plan_measured_steps,
    plan_perceived_steps,
    safe_measured_tau,
)
from .ampdesign import AmppmDesign, AmppmDesigner, UnreachableDimmingError
from .coding import (
    CodewordWeightError,
    SuperSymbolCodec,
    SymbolCodec,
    decode_symbol,
    encode_symbol,
)
from .combinatorics import binomial, bits_per_symbol, symbol_capacity
from .envelope import Envelope, EnvelopePoint, slope_walk_envelope, upper_concave_envelope
from .errormodel import SlotErrorModel
from .params import DEFAULT_CONFIG, SystemConfig
from .perception import (
    is_type1_flicker_free,
    is_type2_flicker_free,
    measured_step_for,
    perceived_step,
    to_measured,
    to_measured_percent,
    to_perceived,
    to_perceived_percent,
)
from .supersymbol import SuperSymbol, compose, reachable_dimming_levels
from .symbols import SymbolPattern, candidate_patterns, enumerate_patterns

__all__ = [
    "AdaptationPlan",
    "Adapter",
    "AmppmDesign",
    "AmppmDesigner",
    "CodewordWeightError",
    "DEFAULT_CONFIG",
    "Envelope",
    "EnvelopePoint",
    "SlotErrorModel",
    "SuperSymbol",
    "SuperSymbolCodec",
    "SymbolCodec",
    "SymbolPattern",
    "SystemConfig",
    "UnreachableDimmingError",
    "binomial",
    "bits_per_symbol",
    "candidate_patterns",
    "compose",
    "decode_symbol",
    "encode_symbol",
    "enumerate_patterns",
    "is_type1_flicker_free",
    "is_type2_flicker_free",
    "measured_step_for",
    "perceived_step",
    "plan_measured_steps",
    "plan_perceived_steps",
    "reachable_dimming_levels",
    "safe_measured_tau",
    "slope_walk_envelope",
    "symbol_capacity",
    "to_measured",
    "to_measured_percent",
    "to_perceived",
    "to_perceived_percent",
    "upper_concave_envelope",
]
