"""Symbol patterns S(N, l): the unit the AMPPM designer reasons about.

Following the paper's definitions (Section 3), a *symbol* is N time
slots of which K are ON; its dimming level is l = K / N (Eq. (1)) and
its data capacity is ``floor(log2 C(N, K))`` bits (Eq. (2)).  A symbol
pattern deliberately does not fix which slots are ON — that choice is
what carries the data (see :mod:`repro.core.coding`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .combinatorics import binomial, bits_per_symbol
from .errormodel import SlotErrorModel
from .params import SystemConfig


@dataclass(frozen=True, order=True)
class SymbolPattern:
    """An (N, K) multiple-pulse-position symbol pattern.

    Ordering is lexicographic on (n_slots, n_on), which keeps candidate
    enumeration deterministic.
    """

    n_slots: int
    n_on: int

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValueError("a symbol needs at least one slot")
        if not 0 <= self.n_on <= self.n_slots:
            raise ValueError(
                f"n_on must lie in [0, n_slots], got K={self.n_on} N={self.n_slots}"
            )

    @property
    def dimming(self) -> float:
        """Dimming level l = K / N, Eq. (1)."""
        return self.n_on / self.n_slots

    @property
    def bits(self) -> int:
        """Data bits carried per symbol: floor(log2 C(N, K))."""
        return bits_per_symbol(self.n_slots, self.n_on)

    @property
    def shape_count(self) -> int:
        """Number of distinct ON placements, C(N, K)."""
        return binomial(self.n_slots, self.n_on)

    def duration(self, config: SystemConfig) -> float:
        """Symbol duration T = N * t_slot in seconds."""
        return self.n_slots * config.t_slot

    def symbol_error_rate(self, errors: SlotErrorModel) -> float:
        """PSER of this pattern under the given slot error model (Eq. (3))."""
        return errors.symbol_error_rate(self.n_slots, self.n_on)

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        """Expected data bits per slot, optionally SER-discounted.

        Without an error model this is the ``bits / N`` quantity plotted
        on the y-axis of the paper's Figs. 6 and 9; with one it is the
        goodput factor of Eq. (2) divided by the slot rate.
        """
        rate = self.bits / self.n_slots
        if errors is not None:
            rate *= 1.0 - self.symbol_error_rate(errors)
        return rate

    def data_rate(self, config: SystemConfig,
                  errors: SlotErrorModel | None = None) -> float:
        """Achievable data rate in bit/s, Eq. (2)."""
        return self.normalized_rate(errors) / config.t_slot

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"S({self.n_slots}, {self.dimming:.3f})"


def enumerate_patterns(n_values: Iterable[int]) -> Iterator[SymbolPattern]:
    """Yield every data-bearing pattern S(N, K) for the given N values.

    K runs over 1..N-1: all-ON and all-OFF symbols carry no data and are
    never candidates (they are plain dimming, not modulation).
    """
    for n in n_values:
        if n < 2:
            continue
        for k in range(1, n):
            yield SymbolPattern(n, k)


def candidate_patterns(config: SystemConfig,
                       errors: SlotErrorModel) -> list[SymbolPattern]:
    """Patterns surviving the paper's Step 1 and Step 2 pruning.

    Step 1 bounds the symbol length by the flicker constraint
    (N <= N_max, Eq. (4)) and the designer's cap; Step 2 abandons any
    pattern whose symbol error rate exceeds ``config.ser_bound``
    (Fig. 8).  Patterns that carry zero bits are also dropped.
    """
    n_hi = min(config.n_cap, config.n_max_super)
    kept = []
    for pattern in enumerate_patterns(range(config.n_min, n_hi + 1)):
        if pattern.bits == 0:
            continue
        if pattern.symbol_error_rate(errors) > config.ser_bound:
            continue
        kept.append(pattern)
    return kept
