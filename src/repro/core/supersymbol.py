"""Super-symbols: multiplexing two symbol patterns (Sections 4.1-4.2).

A super-symbol ⟨S1(N1, l1), m1, S2(N2, l2), m2⟩ concatenates m1 symbols
of the first pattern with m2 of the second.  Its dimming level is the
slot-weighted average of the two patterns' levels, which is how AMPPM
reaches dimming levels *between* the discrete levels any single pattern
can offer — without touching the per-symbol error rate, because every
constituent symbol is still decoded on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errormodel import SlotErrorModel
from .params import SystemConfig
from .symbols import SymbolPattern


@dataclass(frozen=True)
class SuperSymbol:
    """⟨S1, m1, S2, m2⟩ — the transmission unit of AMPPM.

    A single-pattern super-symbol is expressed with ``m2 == 0`` and
    ``second`` equal to ``first`` (the canonical degenerate form used
    when the target dimming level falls exactly on a candidate).
    """

    first: SymbolPattern
    m1: int
    second: SymbolPattern
    m2: int

    def __post_init__(self) -> None:
        if self.m1 < 1:
            raise ValueError("m1 must be at least 1")
        if self.m2 < 0:
            raise ValueError("m2 must be non-negative")
        if self.m2 == 0 and self.second != self.first:
            raise ValueError("degenerate super-symbols must repeat `first`")

    @property
    def n_slots(self) -> int:
        """Total slots N_super = m1*N1 + m2*N2."""
        return self.m1 * self.first.n_slots + self.m2 * self.second.n_slots

    @property
    def n_on(self) -> int:
        """Total ON slots across the super-symbol."""
        return self.m1 * self.first.n_on + self.m2 * self.second.n_on

    @property
    def dimming(self) -> float:
        """l_super: slot-weighted average of the two dimming levels."""
        return self.n_on / self.n_slots

    @property
    def bits(self) -> int:
        """Data bits carried by one super-symbol."""
        return self.m1 * self.first.bits + self.m2 * self.second.bits

    @property
    def n_symbols(self) -> int:
        """Number of constituent symbols, m1 + m2."""
        return self.m1 + self.m2

    def duration(self, config: SystemConfig) -> float:
        """Duration of one super-symbol in seconds."""
        return self.n_slots * config.t_slot

    def symbols(self) -> Iterator[SymbolPattern]:
        """Yield the constituent patterns in transmission order."""
        for _ in range(self.m1):
            yield self.first
        for _ in range(self.m2):
            yield self.second

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        """Expected data bits per slot, optionally SER-discounted.

        Each constituent symbol is decoded independently, so the
        expected goodput is the per-pattern SER-discounted bit count
        averaged over the super-symbol's slots.
        """
        bits1 = self.m1 * self.first.bits
        bits2 = self.m2 * self.second.bits
        if errors is not None:
            bits1 *= 1.0 - self.first.symbol_error_rate(errors)
            bits2 *= 1.0 - self.second.symbol_error_rate(errors)
        return (bits1 + bits2) / self.n_slots

    def data_rate(self, config: SystemConfig,
                  errors: SlotErrorModel | None = None) -> float:
        """Expected data rate in bit/s at the PHY (no frame overhead)."""
        return self.normalized_rate(errors) / config.t_slot

    def error_free_probability(self, errors: SlotErrorModel) -> float:
        """Probability every constituent symbol decodes correctly."""
        ok1 = (1.0 - self.first.symbol_error_rate(errors)) ** self.m1
        ok2 = (1.0 - self.second.symbol_error_rate(errors)) ** self.m2
        return ok1 * ok2

    def flicker_free(self, config: SystemConfig) -> bool:
        """True when the super-symbol meets the Type-I constraint.

        The brightness pattern repeats once per super-symbol, so its
        repetition frequency is f_tx / N_super; Eq. (4) requires
        N_super <= N_max.
        """
        return self.n_slots <= config.n_max_super

    @classmethod
    def single(cls, pattern: SymbolPattern, repeats: int = 1) -> "SuperSymbol":
        """A degenerate super-symbol using one pattern only."""
        return cls(pattern, repeats, pattern, 0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.m2 == 0:
            return f"<{self.first} x{self.m1}>"
        return f"<{self.first} x{self.m1} | {self.second} x{self.m2}>"


def compose(first: SymbolPattern, second: SymbolPattern, target_dimming: float,
            config: SystemConfig, tolerance: float | None = None) -> SuperSymbol:
    """Choose repeat counts so the super-symbol hits ``target_dimming``.

    Searches m1 in 1..m_cap and m2 in 0..m_cap subject to the Type-I
    flicker bound (N_super <= N_max) and returns the combination whose
    dimming level is closest to the target; ties are broken towards the
    higher error-free normalized rate, then towards fewer slots (a
    shorter super-symbol restarts the brightness cycle sooner).

    ``tolerance`` (default: the configured perceived step tau_p) is the
    acceptable |achieved - target| gap; exceeding it raises ValueError
    because the resulting brightness error would be user-visible.
    """
    if not 0.0 < target_dimming < 1.0:
        raise ValueError("target dimming must lie in (0, 1)")
    if tolerance is None:
        tolerance = config.tau_perceived

    lo, hi = sorted((first.dimming, second.dimming))
    if not lo - tolerance <= target_dimming <= hi + tolerance:
        raise ValueError(
            f"target {target_dimming:.4f} outside the span "
            f"[{lo:.4f}, {hi:.4f}] of the given patterns"
        )

    best: SuperSymbol | None = None
    best_key: tuple[float, float, int] | None = None
    for m1 in range(0, config.m_cap + 1):
        for m2 in range(0, config.m_cap + 1):
            if m1 == 0 and m2 == 0:
                continue
            if m1 > 0 and m2 > 0 and second == first:
                break
            if m1 == 0:
                candidate = SuperSymbol.single(second, m2)
            elif m2 == 0:
                candidate = SuperSymbol.single(first, m1)
            else:
                candidate = SuperSymbol(first, m1, second, m2)
            if candidate.n_slots > config.n_max_super:
                break
            gap = abs(candidate.dimming - target_dimming)
            key = (gap, -candidate.normalized_rate(), candidate.n_slots)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
    if best is None or abs(best.dimming - target_dimming) > tolerance:
        achieved = float("nan") if best is None else best.dimming
        raise ValueError(
            f"no flicker-free multiplexing of {first} and {second} reaches "
            f"dimming {target_dimming:.4f} within {tolerance:.4f} "
            f"(closest: {achieved:.4f})"
        )
    return best


def reachable_dimming_levels(first: SymbolPattern, second: SymbolPattern,
                             config: SystemConfig) -> list[float]:
    """All dimming levels reachable by multiplexing the two patterns.

    This is the set plotted in Fig. 6(b): every flicker-free (m1, m2)
    combination contributes one level.  Sorted and de-duplicated.
    """
    levels = {second.dimming}
    for m1 in range(1, config.m_cap + 1):
        for m2 in range(0, config.m_cap + 1):
            if m2 > 0 and second == first:
                break
            n_slots = m1 * first.n_slots + m2 * second.n_slots
            if n_slots > config.n_max_super:
                break
            n_on = m1 * first.n_on + m2 * second.n_on
            levels.add(n_on / n_slots)
    return sorted(levels)
