"""Combinatorial helpers shared by the MPPM-family modulators.

An (N, K) pulse-position symbol can take C(N, K) distinct shapes, of
which a power of two is actually used: each symbol carries
``floor(log2 C(N, K))`` data bits (Eq. (2) of the paper).  The encoder
in :mod:`repro.core.coding` walks the combinadic (combinatorial number
system) order of those shapes, so everything here is exact integer
arithmetic — no floating point, no precomputed tables.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterator, Sequence


def binomial(n: int, k: int) -> int:
    """Exact C(n, k); zero when k is outside 0..n.

    ``math.comb`` raises on negative arguments, while the combinadic
    walk naturally steps outside the triangle, so this wrapper returns
    zero there instead.
    """
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


@lru_cache(maxsize=65536)
def bits_per_symbol(n: int, k: int) -> int:
    """Number of data bits carried by an (n, k) MPPM symbol.

    This is ``floor(log2 C(n, k))`` computed exactly via integer bit
    length.  Returns 0 when the symbol admits fewer than two shapes
    (i.e. it cannot encode even one bit).
    """
    count = binomial(n, k)
    if count < 2:
        return 0
    return count.bit_length() - 1


def symbol_capacity(n: int, k: int) -> int:
    """Number of codeword values usable by an (n, k) symbol: 2**bits."""
    return 1 << bits_per_symbol(n, k) if bits_per_symbol(n, k) > 0 else 1


def rank_of_codeword(slots: Sequence[bool]) -> int:
    """Rank of an ON/OFF slot vector in the combinadic order.

    The order is the one produced by Algorithm 1 of the paper: among
    codewords with the same N and K, a codeword whose first slot is ON
    sorts before one whose first slot is OFF, recursively.  The rank of
    the all-leading-ONs codeword is therefore 0.
    """
    n = len(slots)
    rank = 0
    ones_left = sum(1 for s in slots if s)
    for i, slot in enumerate(slots):
        remaining = n - i - 1
        if slot:
            ones_left -= 1
        else:
            # An OFF here skips every codeword that placed an ON instead.
            rank += binomial(remaining, ones_left - 1)
    return rank


def iter_weighted_codewords(n: int, k: int) -> Iterator[tuple[bool, ...]]:
    """Yield all (n, k) codewords in combinadic (Algorithm 1) order.

    Intended for tests and for the tabulation baseline; the live system
    never materialises this set.
    """
    if k < 0 or k > n:
        return

    def _rec(prefix: list[bool], remaining: int, ones_left: int) -> Iterator[tuple[bool, ...]]:
        if remaining == 0:
            yield tuple(prefix)
            return
        if ones_left > 0:
            prefix.append(True)
            yield from _rec(prefix, remaining - 1, ones_left - 1)
            prefix.pop()
        if remaining - 1 >= ones_left:
            prefix.append(False)
            yield from _rec(prefix, remaining - 1, ones_left)
            prefix.pop()

    yield from _rec([], n, k)


def bits_to_int(bits: Sequence[int]) -> int:
    """Interpret a most-significant-bit-first bit sequence as an integer."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0 or 1, got {bit!r}")
        value = (value << 1) | bit
    return value


def int_to_bits(value: int, width: int) -> list[int]:
    """Render ``value`` as a most-significant-bit-first list of ``width`` bits."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >= (1 << width) and width > 0:
        raise ValueError(f"value {value} does not fit in {width} bits")
    if width == 0:
        if value:
            raise ValueError("non-zero value with zero width")
        return []
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]
