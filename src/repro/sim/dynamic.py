"""The dynamic scenario of Fig. 19: blind pull, controller, throughput.

Reproduces the paper's Section 6.3 run: the window blind moves at a
constant speed for 67 seconds, the smart-lighting controller keeps
I_led + I_ambient constant, the AMPPM designer re-selects super-symbols
as the dimming level travels, and the link reports average throughput
every second.  A parallel fixed-measured-step controller gives the
Fig. 19(c) comparison of adaptation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ampdesign import AmppmDesigner
from ..core.params import SystemConfig
from ..lighting.ambient import AmbientProfile, BlindRampAmbient
from ..lighting.controller import ControllerSample, SmartLightingController
from ..phy.optics import LinkGeometry
from ..schemes import AmppmSchemeDesign
from .linkmodel import LinkEvaluator, expected_goodput


@dataclass(frozen=True)
class DynamicTick:
    """One second of the dynamic run."""

    t: float
    ambient: float
    led: float
    throughput_bps: float
    adjustments_smart: int
    adjustments_existing: int

    @property
    def total_light(self) -> float:
        return self.ambient + self.led


@dataclass(frozen=True)
class DynamicRunResult:
    """The full Fig. 19 dataset."""

    ticks: tuple[DynamicTick, ...]

    @property
    def times(self) -> list[float]:
        return [tick.t for tick in self.ticks]

    @property
    def throughput_bps(self) -> list[float]:
        return [tick.throughput_bps for tick in self.ticks]

    @property
    def ambient_trace(self) -> list[float]:
        return [tick.ambient for tick in self.ticks]

    @property
    def led_trace(self) -> list[float]:
        return [tick.led for tick in self.ticks]

    @property
    def sum_trace(self) -> list[float]:
        return [tick.total_light for tick in self.ticks]

    @property
    def cumulative_adjustments_smart(self) -> list[int]:
        return [tick.adjustments_smart for tick in self.ticks]

    @property
    def cumulative_adjustments_existing(self) -> list[int]:
        return [tick.adjustments_existing for tick in self.ticks]

    @property
    def adaptation_reduction(self) -> float:
        """Fraction of adjustments saved by perception-domain stepping."""
        smart = self.ticks[-1].adjustments_smart
        existing = self.ticks[-1].adjustments_existing
        if existing == 0:
            return 0.0
        return 1.0 - smart / existing


@dataclass
class DynamicScenario:
    """Drives the full dynamic pipeline."""

    config: SystemConfig = field(default_factory=SystemConfig)
    profile: AmbientProfile = field(default_factory=BlindRampAmbient)
    duration_s: float = 67.0
    tick_s: float = 1.0
    target_sum: float = 1.0
    geometry: LinkGeometry = field(
        default_factory=lambda: LinkGeometry.on_axis(3.0))

    def run(self) -> DynamicRunResult:
        """Simulate the scenario and collect the Fig. 19 traces.

        The ambient level at the receiver also scales the channel noise
        (blind near the top → more interference), which reproduces the
        slight right-side throughput dip of Fig. 19(a).
        """
        designer = AmppmDesigner(self.config)
        smart = SmartLightingController(
            target_sum=self.target_sum, config=self.config, designer=designer)
        existing = SmartLightingController(
            target_sum=self.target_sum, config=self.config,
            designer=None, use_perception_domain=False)
        evaluator = LinkEvaluator(config=self.config, geometry=self.geometry)

        ticks = []
        t = 0.0
        while t <= self.duration_s + 1e-9:
            ambient = self.profile.intensity(t)
            sample = smart.tick(t, ambient)
            existing_sample = existing.tick(t, ambient)
            throughput = self._throughput(sample, evaluator, ambient)
            ticks.append(DynamicTick(
                t=t,
                ambient=ambient,
                led=sample.led,
                throughput_bps=throughput,
                adjustments_smart=sample.adjustments,
                adjustments_existing=existing_sample.adjustments,
            ))
            t += self.tick_s
        return DynamicRunResult(tuple(ticks))

    def _throughput(self, sample: ControllerSample,
                    evaluator: LinkEvaluator, ambient: float) -> float:
        if sample.design is None:
            return 0.0
        errors = evaluator.channel.slot_error_model(self.geometry, ambient)
        design = AmppmSchemeDesign(sample.design, self.config)
        return expected_goodput(design, errors, self.config)
