"""Export experiment results to CSV / JSON for external plotting.

The text renderings in :mod:`repro.sim.results` are for terminals; real
papers get plotted.  These writers flatten a :class:`FigureResult` into
long-form CSV (one row per point, a column tagging the series) or JSON,
and a :class:`TableResult` into plain CSV — formats every plotting tool
ingests directly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .results import FigureResult, TableResult


def figure_to_rows(figure: FigureResult) -> list[dict[str, object]]:
    """Long-form records: one dict per (series, x, y) point."""
    rows: list[dict[str, object]] = []
    for series in figure.series:
        for x, y in zip(series.x, series.y):
            rows.append({"figure": figure.figure_id, "series": series.name,
                         "x": x, "y": y})
    return rows


def write_figure_csv(figure: FigureResult, path: str | Path) -> Path:
    """Write a figure as long-form CSV; returns the written path."""
    path = Path(path)
    rows = figure_to_rows(figure)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle,
                                fieldnames=["figure", "series", "x", "y"])
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_table_csv(table: TableResult, path: str | Path) -> Path:
    """Write a table result as CSV; returns the written path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.header)
        writer.writerows(table.rows)
    return path


def result_to_json(result: FigureResult | TableResult) -> str:
    """Serialise either result kind to a self-describing JSON document."""
    if isinstance(result, FigureResult):
        payload: dict[str, object] = {
            "kind": "figure",
            "id": result.figure_id,
            "title": result.title,
            "x_label": result.x_label,
            "y_label": result.y_label,
            "notes": result.notes,
            "series": [
                {"name": s.name, "x": list(s.x), "y": list(s.y)}
                for s in result.series
            ],
        }
    elif isinstance(result, TableResult):
        payload = {
            "kind": "table",
            "id": result.table_id,
            "title": result.title,
            "notes": result.notes,
            "header": list(result.header),
            "rows": [list(row) for row in result.rows],
        }
    else:
        raise TypeError(f"cannot serialise {type(result).__name__}")
    return json.dumps(payload, indent=2, sort_keys=True)


def write_json(result: FigureResult | TableResult, path: str | Path) -> Path:
    """Write either result kind as JSON; returns the written path."""
    path = Path(path)
    path.write_text(result_to_json(result) + "\n")
    return path
