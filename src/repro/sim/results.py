"""Result containers shared by all experiment harnesses.

Every harness returns a :class:`Series` (figure) or :class:`Table`
(table) so benchmarks, tests and the EXPERIMENTS.md generator consume
one shape.  Rendering is plain text: aligned columns and an ASCII
sparkline-style plot good enough to eyeball curve shapes in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pure annotation; avoids a sim <-> obs import at runtime
    from ..obs.manifest import RunManifest


@dataclass(frozen=True)
class Series:
    """One named curve: y over x."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same length")
        if not self.x:
            raise ValueError("a series needs at least one point")

    def value_at(self, x: float, tol: float = 1e-9) -> float:
        """The y value at an exact x (no interpolation).

        A miss raises ``KeyError`` naming the nearest available x
        values, so a typo'd grid point is diagnosable from the message
        alone.
        """
        for xi, yi in zip(self.x, self.y):
            if abs(xi - x) <= tol:
                return yi
        nearest = sorted(set(self.x), key=lambda xi: (abs(xi - x), xi))[:3]
        raise KeyError(
            f"x={x} not in series {self.name!r}; nearest available x: "
            + ", ".join(f"{xi:g}" for xi in sorted(nearest)))

    @property
    def y_max(self) -> float:
        return max(self.y)

    @property
    def y_min(self) -> float:
        return min(self.y)


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: several series over a common x-axis meaning.

    ``manifest`` is the run's provenance record, attached by
    :func:`~repro.experiments.run_experiment`.  It is excluded from
    equality (``compare=False``) and from :meth:`render`, because it
    carries wall-clock values that must never influence result
    comparisons or determinism digests.
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: str = ""
    manifest: "RunManifest | None" = field(default=None, compare=False)

    def get(self, name: str) -> Series:
        """Series by name."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series {name!r} in {self.figure_id}")

    def render(self, width: int = 72, height: int = 16) -> str:
        """Plain-text rendering: an ASCII plot plus a value table."""
        lines = [f"{self.figure_id}: {self.title}",
                 f"  y: {self.y_label}   x: {self.x_label}"]
        lines.append(ascii_plot(self.series, width=width, height=height))
        header = ["x"] + [s.name for s in self.series]
        rows = []
        xs = sorted({x for s in self.series for x in s.x})
        for x in xs:
            row = [f"{x:g}"]
            for s in self.series:
                try:
                    row.append(f"{s.value_at(x):.4g}")
                except KeyError:
                    row.append("-")
            rows.append(row)
        lines.append(format_table(header, rows))
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class TableResult:
    """A reproduced table: header plus string rows.

    ``manifest`` mirrors :class:`FigureResult.manifest`: provenance
    only, excluded from equality and rendering.
    """

    table_id: str
    title: str
    header: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]
    notes: str = ""
    manifest: "RunManifest | None" = field(default=None, compare=False)

    def render(self) -> str:
        text = [f"{self.table_id}: {self.title}",
                format_table(list(self.header), [list(r) for r in self.rows])]
        if self.notes:
            text.append(f"  note: {self.notes}")
        return "\n".join(text)


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align columns of a small text table."""
    columns = [list(col) for col in zip(header, *rows)] if rows else [[h] for h in header]
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt(row: Sequence[str]) -> str:
        return "  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


_MARKERS = "ox+*#@%&"


def ascii_plot(series: Sequence[Series], width: int = 72, height: int = 16) -> str:
    """A crude multi-series scatter plot in ASCII."""
    xs = [x for s in series for x in s.x]
    ys = [y for s in series for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(s.x, s.y):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [f"  {y_hi:10.4g} +{''.join(grid[0])}"]
    lines.extend(f"  {'':10} |{''.join(row)}" for row in grid[1:-1])
    lines.append(f"  {y_lo:10.4g} +{''.join(grid[-1])}")
    lines.append(f"  {'':10}  {str(f'{x_lo:g}').ljust(width // 2)}{f'{x_hi:g}'.rjust(width // 2)}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {s.name}"
                        for i, s in enumerate(series))
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)


@dataclass
class ExperimentRegistry:
    """Maps experiment ids to runner callables (populated lazily)."""

    runners: dict = field(default_factory=dict)

    def register(self, experiment_id: str, runner) -> None:
        if experiment_id in self.runners:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        self.runners[experiment_id] = runner

    def get(self, experiment_id: str):
        if experiment_id not in self.runners:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; known: "
                f"{sorted(self.runners)}"
            )
        return self.runners[experiment_id]

    def run(self, experiment_id: str, **kwargs):
        return self.get(experiment_id)(**kwargs)

    def ids(self) -> list[str]:
        return sorted(self.runners)
