"""Vectorized batched Monte-Carlo engine.

:mod:`repro.sim.montecarlo` replays symbols and frames one at a time
through the scalar codec — the *reference* implementation, kept for
auditability.  This module is the throughput path: it carries the same
combinadic walk (Algorithms 1 and 2) across a whole batch at once, so a
Monte-Carlo run touches NumPy a constant number of times instead of
once per symbol:

* :class:`BatchCodec` — encode all ``n_symbols`` values into one
  ``(n_symbols, n_slots)`` boolean array and rank-decode the whole
  batch back, with the ON-count weight check vectorized alongside.
* :func:`corrupt_batch` — flip every slot of every codeword in a single
  ``rng.random(shape) < p`` pass.
* :class:`BatchMonteCarloValidator` — drop-in batched counterpart of
  :class:`~repro.sim.montecarlo.MonteCarloValidator`.

Reproducibility contract: for the same seed the batch engine consumes
the *identical* random stream as the scalar path (``rng.random((b, n))``
fills row-by-row exactly like ``b`` successive ``rng.random(n)`` calls),
so batch and scalar results are bit-identical, not merely statistically
compatible.  The parity suite in ``tests/sim/test_batch_parity.py``
asserts both the exact match and the 4-sigma binomial envelope.

The vectorized walk stores binomial coefficients in an ``int64`` table;
patterns whose coefficient triangle exceeds ``int64`` (no (N, K) with
N <= 66 does — the frame header caps N at 63) fall back to the scalar
reference path transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import SchemeDesign
from ..core.combinatorics import binomial, bits_per_symbol, symbol_capacity
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..core.symbols import SymbolPattern
from ..link.frame import FrameError
from ..link.receiver import Receiver
from ..link.transmitter import Transmitter
from ..obs import metrics, span
from ..phy.optics import OpticalFrontEnd
from .montecarlo import MonteCarloValidator, SymbolErrorEstimate, default_payload

_INT64_MAX = np.iinfo(np.int64).max


def _binomial_table(n: int, k: int) -> np.ndarray | None:
    """Shifted binomial table as int64; None on overflow.

    ``table[m, j] = C(m, j - 1)`` with a zero column at ``j = 0``, so
    the walk can index it directly with ``ones_left`` (which is always
    >= 0) instead of clamping ``ones_left - 1``.  The walk only ever
    looks up C(m, j) with m <= n and j < k, so the largest entry is
    C(n, min(k, n // 2)).
    """
    if binomial(n, min(k, n // 2)) > _INT64_MAX:
        return None
    table = np.zeros((n + 1, k + 1), dtype=np.int64)
    for m in range(n + 1):
        for j in range(1, min(m + 1, k) + 1):
            table[m, j] = binomial(m, j - 1)
    return table


class BatchCodec:
    """Vectorized Algorithms 1 and 2 for a fixed (n, k) pattern.

    Encoding and decoding are loops over the ``n`` slot positions, each
    step a handful of O(batch) array operations — the per-symbol Python
    loop of :mod:`repro.core.coding` becomes a per-slot NumPy loop.
    """

    def __init__(self, n: int, k: int):
        if n < 1:
            raise ValueError("a symbol needs at least one slot")
        if not 0 <= k <= n:
            raise ValueError(f"n_on must lie in [0, n_slots], got K={k} N={n}")
        self.n = n
        self.k = k
        self.bits = bits_per_symbol(n, k)
        self.capacity = symbol_capacity(n, k)
        self._table = _binomial_table(n, k)

    @property
    def supported(self) -> bool:
        """False when the binomial triangle overflows int64."""
        return self._table is not None

    def _require_supported(self) -> np.ndarray:
        if self._table is None:
            raise ValueError(
                f"S({self.n},{self.k}) exceeds the int64 batch codec range; "
                "use the scalar codec"
            )
        return self._table

    def encode_batch(self, values: np.ndarray) -> np.ndarray:
        """Encode a 1-D array of values into an (len(values), n) bool array.

        Mirrors :func:`repro.core.coding.encode_symbol` exactly,
        including its validation errors.
        """
        table = self._require_supported()
        if self.bits == 0:
            raise ValueError(f"S({self.n},{self.k}) carries no data bits")
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("values must be a 1-D array")
        if values.size and (int(values.min()) < 0
                            or int(values.max()) >= self.capacity):
            raise ValueError(
                f"values out of range for S({self.n},{self.k}) "
                f"(capacity {self.capacity})"
            )
        n, k = self.n, self.k
        slots = np.zeros((values.size, n), dtype=bool)
        remaining = values.copy()
        ones_left = np.full(values.size, k, dtype=np.int64)
        for i in range(n):
            # Inside the walk (both sides still available) an OFF is
            # chosen when the value exceeds the ON-branch count; once
            # one side is exhausted the tail is forced (all remaining
            # ONs, then all remaining OFFs).
            branching = (ones_left > 0) & (ones_left < n - i)
            with_on_here = table[n - i - 1].take(ones_left)
            choose_off = branching & (remaining >= with_on_here)
            on = (ones_left > 0) & ~choose_off
            slots[:, i] = on
            np.subtract(remaining, with_on_here, out=remaining,
                        where=choose_off)
            ones_left -= on
        metrics().counter("repro_codec_symbols_encoded_total",
                          help="symbols encoded by the batch codec") \
            .inc(values.size)
        return slots

    def decode_batch(self, slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Rank-decode an (b, n) bool array.

        Returns ``(values, weight_ok)``: the combinadic rank of every
        row and a mask that is False where the row's ON count disagrees
        with ``k`` (the scalar path raises CodewordWeightError there;
        ranks of weight-failing rows are meaningless).
        """
        table = self._require_supported()
        slots = np.asarray(slots, dtype=bool)
        if slots.ndim != 2 or slots.shape[1] != self.n:
            raise ValueError(f"expected shape (batch, {self.n}), "
                             f"got {slots.shape}")
        n, k = self.n, self.k
        weight_ok = slots.sum(axis=1) == k
        values = np.zeros(slots.shape[0], dtype=np.int64)
        ones_left = np.full(slots.shape[0], k, dtype=np.int64)
        for i in range(n):
            remaining = n - i - 1
            active = (ones_left > 0) & (ones_left <= remaining)
            column = slots[:, i]
            skipped = table[remaining].take(ones_left)
            np.add(values, skipped, out=values, where=active & ~column)
            ones_left -= active & column
        metrics().counter("repro_codec_symbols_decoded_total",
                          help="symbols rank-decoded by the batch codec") \
            .inc(slots.shape[0])
        return values, weight_ok


def lambertian_gains(optics: OpticalFrontEnd, horizontal_m: np.ndarray,
                     vertical_m: float) -> np.ndarray:
    """Vectorized Lambertian DC gains for ceiling-to-floor links.

    The batched counterpart of
    ``optics.channel_gain(LinkGeometry.from_offsets(h, vertical_m))``
    for an array of horizontal offsets: same 89° angle clamp, same
    hard zero outside the receiver field of view, one NumPy pass
    instead of a Python loop per luminaire.  The sharded multicell
    kernel uses this to fold a whole region's worth of cross-region
    interferers into one variance number per link evaluation.
    """
    if vertical_m <= 0:
        raise ValueError("vertical_m must be positive")
    horizontal = np.asarray(horizontal_m, dtype=float)
    if horizontal.size and float(horizontal.min()) < 0:
        raise ValueError("horizontal offsets must be non-negative")
    distance = np.hypot(horizontal, vertical_m)
    angle = np.minimum(np.degrees(np.arctan2(horizontal, vertical_m)), 89.0)
    gains = np.zeros_like(distance)
    visible = angle <= optics.rx_fov_deg
    if np.any(visible):
        m = optics.lambertian_order
        cos = np.cos(np.radians(angle[visible]))
        radial = (m + 1.0) / (2.0 * np.pi * distance[visible] ** 2)
        # Irradiance and incidence angles coincide for an upward-facing
        # receiver, hence cos^m · cos with the same cosine.
        gains[visible] = (radial * cos ** m * optics.rx_area_m2
                          * optics.optical_filter_gain * cos)
    return gains


def corrupt_batch(slots: np.ndarray, errors: SlotErrorModel,
                  rng: np.random.Generator) -> np.ndarray:
    """Flip every slot of a (batch, n_slots) array independently.

    The batched analogue of :func:`repro.link.mac.corrupt_slots`: one
    uniform draw per slot, compared against the ON/OFF error
    probability of that slot.  Row ``i`` consumes exactly the draws the
    scalar loop would consume for frame ``i``, so results match
    bit-for-bit under a shared seed.
    """
    slots = np.asarray(slots, dtype=bool)
    if errors.p_off_error == 0.0 and errors.p_on_error == 0.0:
        return slots.copy()
    draws = rng.random(slots.shape)
    p = np.where(slots, errors.p_on_error, errors.p_off_error)
    return slots ^ (draws < p)


@dataclass
class BatchMonteCarloValidator:
    """Batched stochastic replays of the analytic link-model quantities.

    Method-for-method counterpart of
    :class:`~repro.sim.montecarlo.MonteCarloValidator`; same signatures,
    same random-stream consumption, vectorized hot loops.
    """

    config: SystemConfig = field(default_factory=SystemConfig)

    def symbol_error_rate(self, pattern: SymbolPattern,
                          errors: SlotErrorModel,
                          rng: np.random.Generator,
                          n_symbols: int = 5000) -> SymbolErrorEstimate:
        """Empirical SER of a pattern, whole batch at once."""
        if n_symbols < 1:
            raise ValueError("n_symbols must be positive")
        codec = BatchCodec(pattern.n_slots, pattern.n_on)
        if not codec.supported:
            return MonteCarloValidator(self.config).symbol_error_rate(
                pattern, errors, rng, n_symbols)
        with span("batch.symbol_error_rate", n_symbols=n_symbols,
                  pattern=f"S({pattern.n_slots},{pattern.n_on})"):
            values = rng.integers(0, codec.capacity, size=n_symbols)
            sent = codec.encode_batch(values)
            received = corrupt_batch(sent, errors, rng)
            decoded, weight_ok = codec.decode_batch(received)
            wrong = decoded != values
            estimate = SymbolErrorEstimate(
                n_symbols=n_symbols,
                n_errors=int(np.count_nonzero(~weight_ok | wrong)),
                n_undetected=int(np.count_nonzero(weight_ok & wrong)),
                analytic_ser=pattern.symbol_error_rate(errors),
            )
        registry = metrics()
        registry.counter("repro_batch_symbols_total",
                         help="symbols replayed by the batch engine") \
            .inc(n_symbols)
        registry.counter("repro_batch_symbol_errors_total",
                         help="symbol errors observed by the batch engine") \
            .inc(estimate.n_errors)
        registry.histogram("repro_batch_size",
                           help="symbols per batched SER call",
                           buckets=(100, 1000, 10_000, 100_000, 1_000_000)) \
            .observe(n_symbols)
        return estimate

    def frame_loss_rate(self, design: SchemeDesign, errors: SlotErrorModel,
                        rng: np.random.Generator, n_frames: int = 200,
                        payload: bytes | None = None) -> tuple[float, float]:
        """(measured, analytic) frame loss, corruption vectorized.

        All frames are corrupted in one pass; only rows where at least
        one slot actually flipped are pushed through the real receiver
        (an unflipped frame round-trips by construction), which removes
        the per-frame Python work at the low error rates the link
        operates at.
        """
        from .linkmodel import frame_success_probability

        if n_frames < 1:
            raise ValueError("n_frames must be positive")
        payload = (payload if payload is not None
                   else default_payload(self.config.payload_bytes))
        with span("batch.frame_loss_rate", n_frames=n_frames):
            tx = Transmitter(self.config)
            rx = Receiver(self.config)
            slots = np.asarray(tx.encode_frame(payload, design), dtype=bool)
            received = corrupt_batch(
                np.broadcast_to(slots, (n_frames, slots.size)), errors, rng)
            flipped_rows = np.nonzero(
                (received != slots[None, :]).any(axis=1))[0]
            losses = 0
            for row in flipped_rows:
                try:
                    frame = rx.decode_frame(received[row].tolist())
                    if frame.payload != payload:
                        losses += 1
                except FrameError:
                    losses += 1
            analytic = 1.0 - frame_success_probability(
                design, errors, self.config, len(payload))
        registry = metrics()
        registry.counter("repro_batch_frames_total",
                         help="frames replayed by the batch engine") \
            .inc(n_frames)
        registry.counter("repro_batch_frame_losses_total",
                         help="frames lost in batched replays").inc(losses)
        return losses / n_frames, analytic
