"""Parallel figure-grid sweeps with reproducible seeding.

The figure harnesses evaluate independent grid points — dimming levels,
distances, incidence angles, designer-bound settings — so they
parallelise embarrassingly.  :class:`SweepRunner` fans a worker
function over the points of such a grid, either in-process (the
default, identical to the historical serial loops) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Reproducibility contract for stochastic sweeps: when a ``seed`` is
given, one child :class:`numpy.random.SeedSequence` is spawned per grid
point (``SeedSequence(seed).spawn(len(points))``) and the worker
receives a :class:`numpy.random.Generator` built from its own child.
Each point therefore sees the same random stream no matter how many
workers run or in what order points are scheduled — ``jobs=None`` and
``jobs=8`` produce bit-identical results.

Workers must be module-level functions and points picklable values
(tuples of configs and floats), because parallel execution ships them
to worker processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from ..obs import active, active_span, metrics, span, telemetry_session


def _run_seeded(func: Callable[[Any, np.random.Generator], Any],
                point: Any, seed_seq: np.random.SeedSequence) -> Any:
    """Build the point's generator from its spawned child and run."""
    return func(point, np.random.default_rng(seed_seq))


def _run_captured(func: Callable[[Any], Any], point: Any,
                  index: int) -> tuple[Any, dict, dict]:
    """Run one point under a fresh child-process telemetry session.

    Returns ``(result, metrics snapshot, span payload)`` so the parent
    can absorb the shard into its own registry and span recorder — the
    mergeability half of the :class:`~repro.obs.metrics.MetricsRegistry`
    contract plus the shard-stitching half of
    :meth:`~repro.obs.spans.SpanRecorder.absorb`.  The worker itself
    runs inside a ``sweep.point`` span, so every shard ships at least
    its own per-point timing even when the workload has no deeper
    instrumentation.
    """
    with telemetry_session() as session:
        with span("sweep.point", point=index):
            result = func(point)
    return result, session.registry.snapshot(), session.spans.payload()


def _run_captured_seeded(
        func: Callable[[Any, np.random.Generator], Any], point: Any,
        seed_seq: np.random.SeedSequence,
        index: int) -> tuple[Any, dict, dict]:
    """Seeded variant of :func:`_run_captured` (same RNG contract)."""
    with telemetry_session() as session:
        with span("sweep.point", point=index):
            result = func(point, np.random.default_rng(seed_seq))
    return result, session.registry.snapshot(), session.spans.payload()


@dataclass(frozen=True)
class SweepRunner:
    """Map a worker over grid points, serially or across processes.

    ``jobs=None`` (or 1) runs in-process; ``jobs=N`` uses up to N
    worker processes, capped by the point count and the CPU count.
    """

    jobs: int | None = None

    def __post_init__(self) -> None:
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be a positive integer")

    @property
    def parallel(self) -> bool:
        """Whether this runner would actually fork workers."""
        return self.jobs is not None and self.jobs > 1

    def map(self, func: Callable, points: Iterable,
            seed: int | None = None) -> list:
        """``[func(p) for p in points]``, possibly across processes.

        With ``seed`` set, ``func`` must instead accept ``(point, rng)``
        and receives a per-point generator spawned from the seed (see
        the module docstring for the reproducibility contract).
        Results are always returned in point order.
        """
        points = list(points)
        seeds = (np.random.SeedSequence(seed).spawn(len(points))
                 if seed is not None else None)
        with span("sweep.map", points=len(points),
                  jobs=self.jobs, seeded=seed is not None):
            metrics().counter("repro_sweep_points_total",
                              help="grid points mapped by SweepRunner") \
                .inc(len(points))
            if not self.parallel or len(points) <= 1:
                # In-process: workers record straight into the active
                # telemetry session (if any); nothing to merge.
                if seeds is None:
                    return [func(point) for point in points]
                return [_run_seeded(func, point, child)
                        for point, child in zip(points, seeds)]
            workers = min(self.jobs, len(points),
                          os.cpu_count() or self.jobs)
            session = active()
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if session is None:
                    if seeds is None:
                        return list(pool.map(func, points))
                    return list(pool.map(_run_seeded, [func] * len(points),
                                         points, seeds))
                # Telemetry on: each worker runs under its own session
                # and ships its registry snapshot and span payload back
                # with the result.
                if seeds is None:
                    triples = list(pool.map(_run_captured,
                                            [func] * len(points), points,
                                            range(len(points))))
                else:
                    triples = list(pool.map(_run_captured_seeded,
                                            [func] * len(points),
                                            points, seeds,
                                            range(len(points))))
            parent = active_span()
            for shard, (_, snapshot, spans) in enumerate(triples):
                session.registry.absorb(snapshot)
                session.spans.absorb(
                    spans, shard=shard,
                    parent_id=None if parent is None else parent.span_id,
                    base_depth=0 if parent is None else parent.depth + 1)
            return [result for result, _, _ in triples]

    def map_guarded(self, func: Callable,
                    points: Iterable) -> list[tuple[str, Any]]:
        """:meth:`map` that survives worker deaths, point by point.

        Returns one ``(status, value)`` pair per point, in point order:
        ``("ok", result)`` for points whose worker returned, and
        ``("crash", detail)`` for points whose worker process died
        (segfault, ``os._exit``, OOM kill — anything that breaks the
        pool).  A broken pool normally poisons every outstanding future
        in a :class:`~concurrent.futures.ProcessPoolExecutor`; here the
        surviving points are re-run, each in a fresh single-worker
        pool, so exactly the killer points are marked and the rest
        still produce results.  The fuzz campaign runner depends on
        this: a crashing case is a *finding*, never the end of the
        campaign.

        ``func`` must tolerate being called twice for the same point
        (re-isolation re-runs survivors of a broken batch), which every
        deterministic worker does for free.
        """
        from concurrent.futures.process import BrokenProcessPool

        points = list(points)
        if not self.parallel or len(points) <= 1:
            # In-process there is no pool to break: a crashing point
            # would take the whole interpreter down regardless, so a
            # plain map is the honest behaviour.
            return [("ok", result) for result in self.map(func, points)]
        try:
            return [("ok", result) for result in self.map(func, points)]
        except BrokenProcessPool:
            pass
        # The batch died.  Isolate each point in its own throwaway
        # pool: one worker, one point, so a death names its culprit.
        metrics().counter(
            "repro_sweep_broken_pools_total",
            help="sweep batches re-isolated after a worker death").inc()
        guarded: list[tuple[str, Any]] = []
        for point in points:
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    guarded.append(("ok", pool.submit(func, point).result()))
            except BrokenProcessPool:
                guarded.append(("crash",
                                "worker process died executing this point"))
        return guarded
