"""Simulation drivers: analytic link model, dynamic scenario, waveform path."""

from .batch import (
    BatchCodec,
    BatchMonteCarloValidator,
    corrupt_batch,
    lambertian_gains,
)
from .dynamic import DynamicRunResult, DynamicScenario, DynamicTick
from .endtoend import EndToEndLink, EndToEndReport
from .export import (
    figure_to_rows,
    result_to_json,
    write_figure_csv,
    write_json,
    write_table_csv,
)
from .linkmodel import (
    LinkEvaluator,
    expected_goodput,
    frame_slot_count,
    frame_success_probability,
    stop_and_wait_goodput,
)
from .montecarlo import MonteCarloValidator, SymbolErrorEstimate, default_payload
from .results import (
    ExperimentRegistry,
    FigureResult,
    Series,
    TableResult,
    ascii_plot,
    format_table,
)
from .sweep import SweepRunner

__all__ = [
    "BatchCodec",
    "BatchMonteCarloValidator",
    "DynamicRunResult",
    "DynamicScenario",
    "DynamicTick",
    "EndToEndLink",
    "EndToEndReport",
    "ExperimentRegistry",
    "FigureResult",
    "LinkEvaluator",
    "MonteCarloValidator",
    "Series",
    "SweepRunner",
    "SymbolErrorEstimate",
    "TableResult",
    "ascii_plot",
    "corrupt_batch",
    "default_payload",
    "expected_goodput",
    "figure_to_rows",
    "format_table",
    "frame_slot_count",
    "frame_success_probability",
    "lambertian_gains",
    "result_to_json",
    "stop_and_wait_goodput",
    "write_figure_csv",
    "write_json",
    "write_table_csv",
]
