"""Waveform-level end-to-end simulation: the whole prototype in one run.

This is the integration path that exercises every substrate at the
sample level — the analytic link model's results must be explainable by
what happens here:

    payload → frame slots → LED drive → edge-filtered light →
    Lambertian channel → photocurrent + ambient + noise → ADC →
    preamble correlation → slot decisions → frame decode → CRC

Used by the integration tests and the ``waveform_link`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..baselines.base import SchemeDesign
from ..core.params import SystemConfig
from ..link.frame import FrameError
from ..link.receiver import DecodedFrame, Receiver, SampleSynchronizer
from ..link.transmitter import Transmitter
from ..obs import metrics, span
from ..phy.channel import VlcChannel, calibrated_channel
from ..phy.optics import LinkGeometry
from ..phy.waveform import SlotSampler, WaveformSynthesizer

if TYPE_CHECKING:  # pure annotation; avoids a sim <-> resilience cycle
    from ..resilience.faults import FaultSchedule


@dataclass(frozen=True)
class EndToEndReport:
    """Outcome of one waveform-level frame exchange."""

    delivered: bool
    frame: DecodedFrame | None
    slot_errors: int
    n_slots: int
    failure: str = ""

    @property
    def slot_error_rate(self) -> float:
        if self.n_slots == 0:
            return 0.0
        return self.slot_errors / self.n_slots


@dataclass
class EndToEndLink:
    """A complete TX → optics → RX chain at the sample level."""

    config: SystemConfig = field(default_factory=SystemConfig)
    channel: VlcChannel | None = None
    geometry: LinkGeometry = field(
        default_factory=lambda: LinkGeometry.on_axis(3.0))
    ambient: float = 1.0
    #: samples of ambient-only silence prepended before the frame
    leading_silence_slots: int = 16
    #: optional fault schedule; ambient-step overrides and ADC-blinding
    #: pedestals apply at the ``at_s`` passed to each send
    faults: "FaultSchedule | None" = None

    def __post_init__(self) -> None:
        if self.channel is None:
            self.channel = calibrated_channel(self.config)
        self._tx = Transmitter(self.config)
        self._rx = Receiver(self.config)
        self._synth = WaveformSynthesizer(self.config)
        self._sync = SampleSynchronizer(self.config)
        self._sampler = SlotSampler(self.config)

    def ambient_at(self, at_s: float) -> float:
        """Effective ambient at ``at_s``: faults applied, clamped [0, 1].

        Ambient-step transients replace the base level; ADC-blinding
        windows add their pedestal on top, saturating at full ambient —
        the waveform then carries the extra shot noise of the glare.
        """
        if self.faults is None:
            return self.ambient
        level = self.faults.ambient_at(at_s, self.ambient)
        level += self.faults.ambient_boost_at(at_s)
        return min(max(level, 0.0), 1.0)

    def send_frame(self, payload: bytes, design: SchemeDesign,
                   rng: np.random.Generator,
                   at_s: float = 0.0) -> EndToEndReport:
        """Push one frame through the full pipeline.

        ``at_s`` stamps the send on the fault clock: when a fault
        schedule is attached, the ambient pedestal and blinding
        active at that instant shape the received waveform.
        """
        registry = metrics()
        registry.counter("repro_endtoend_frames_total",
                         help="frames pushed through the waveform path").inc()
        slots = self._tx.encode_frame(payload, design)
        padded = ([False] * self.leading_silence_slots + slots
                  + [False] * self.leading_silence_slots)
        samples = self._synth.received_samples(
            padded, self.channel, self.geometry, self.ambient_at(at_s), rng)

        start = self._sync.find_frame_start(samples)
        available = (samples.size - start) // self.config.oversampling
        decided = self._sampler.decide(samples, available, offset=start)

        slot_errors = sum(
            1 for sent, got in zip(slots, decided) if sent != got)
        registry.counter("repro_endtoend_slot_errors_total",
                         help="slot decisions that flipped end to end") \
            .inc(slot_errors)
        try:
            frame = self._rx.decode_frame(decided)
        except FrameError as exc:
            registry.counter("repro_endtoend_frame_failures_total",
                             help="waveform-path frames lost to decode "
                                  "errors").inc()
            return EndToEndReport(False, None, slot_errors, len(slots),
                                  failure=str(exc))
        delivered = frame.payload == payload
        if not delivered:
            registry.counter("repro_endtoend_frame_failures_total",
                             help="waveform-path frames lost to decode "
                                  "errors").inc()
        return EndToEndReport(delivered, frame, slot_errors, len(slots),
                              failure="" if delivered else "payload mismatch")

    def measure_slot_error_rate(self, design: SchemeDesign, payload: bytes,
                                n_frames: int, rng: np.random.Generator,
                                batch: bool = True,
                                at_s: float = 0.0) -> float:
        """Average slot error rate over repeated frames.

        With ``batch=True`` (the default) the deterministic half of the
        pipeline — frame assembly, LED edge filter, optics, ambient
        pedestal — is synthesised once and all frames' noise is drawn
        in a single ``(n_frames, n_samples)`` pass; per-row work is
        reduced to the C-level sync correlation and slot decisions.
        ``batch=False`` keeps the frame-at-a-time reference loop; both
        paths consume the identical random stream and return the same
        value for the same seed.
        """
        if not batch:
            total_errors = 0
            total_slots = 0
            for _ in range(n_frames):
                report = self.send_frame(payload, design, rng, at_s=at_s)
                total_errors += report.slot_errors
                total_slots += report.n_slots
            return total_errors / total_slots if total_slots else 0.0

        if n_frames < 1:
            return 0.0
        with span("endtoend.measure_slot_error_rate", n_frames=n_frames):
            slots = self._tx.encode_frame(payload, design)
            padded = ([False] * self.leading_silence_slots + slots
                      + [False] * self.leading_silence_slots)
            sample_rows = self._synth.received_samples_batch(
                padded, self.channel, self.geometry, self.ambient_at(at_s),
                rng, n_frames)
            sent = np.asarray(slots, dtype=bool)
            total_errors = 0
            for row in sample_rows:
                start = self._sync.find_frame_start(row)
                available = (row.size - start) // self.config.oversampling
                decided = np.asarray(
                    self._sampler.decide(row, available, offset=start),
                    dtype=bool)
                m = min(sent.size, decided.size)
                total_errors += int(np.count_nonzero(sent[:m] != decided[:m]))
            total_slots = n_frames * len(slots)
        registry = metrics()
        registry.counter("repro_endtoend_frames_total",
                         help="frames pushed through the waveform path") \
            .inc(n_frames)
        registry.counter("repro_endtoend_slot_errors_total",
                         help="slot decisions that flipped end to end") \
            .inc(total_errors)
        return total_errors / total_slots if total_slots else 0.0
