"""Monte-Carlo validation of the analytic error models.

The figure harnesses lean on closed forms — Eq. (3) for symbol errors
and the frame-success product for goodput.  This module replays the
same quantities stochastically through the *real* codec and receiver,
so the analytic layer is continuously validated against the executable
one:

* :meth:`MonteCarloValidator.symbol_error_rate` — flip slots with the
  channel probabilities, decode with Algorithm 2, count mismatches.
  Must converge to Eq. (3).
* :meth:`MonteCarloValidator.undetected_error_rate` — of those symbol
  errors, how many alias to a *valid but wrong* value (compensating
  flips that preserve the ON count)?  This is the residual the frame
  CRC exists to catch.
* :meth:`MonteCarloValidator.frame_loss_rate` — whole frames through
  the real receiver vs the analytic frame-success probability.

This module is the *scalar reference* implementation: one symbol or
frame at a time, easy to audit against the paper's pseudocode.  The
production path for large trial counts is the vectorized engine in
:mod:`repro.sim.batch`, which consumes the same random stream and is
held bit-identical to this one by the parity suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import SchemeDesign
from ..core.coding import CodewordWeightError, decode_symbol, encode_symbol
from ..core.combinatorics import symbol_capacity
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..core.symbols import SymbolPattern
from ..link.frame import FrameError
from ..link.mac import corrupt_slots
from ..link.receiver import Receiver
from ..link.transmitter import Transmitter
from ..obs import metrics, span


def default_payload(n_bytes: int) -> bytes:
    """A deterministic ``n_bytes``-long ramp payload (0, 1, ..., 255, 0, ...).

    The previous expression — ``bytes(range(n % 256))`` tiled — produced
    an *empty* payload whenever ``n_bytes`` was a multiple of 256 and a
    wrong ramp otherwise (e.g. 300 bytes became a repeated 44-byte
    pattern); this covers every length correctly.
    """
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    return bytes(i % 256 for i in range(n_bytes))


@dataclass(frozen=True)
class SymbolErrorEstimate:
    """Outcome of a symbol-level Monte-Carlo run."""

    n_symbols: int
    n_errors: int
    n_undetected: int
    analytic_ser: float

    @property
    def measured_ser(self) -> float:
        """Fraction of symbols that decoded wrongly (any cause)."""
        if self.n_symbols == 0:
            return 0.0
        return self.n_errors / self.n_symbols

    @property
    def undetected_fraction(self) -> float:
        """Fraction of symbols that aliased silently (CRC territory)."""
        if self.n_symbols == 0:
            return 0.0
        return self.n_undetected / self.n_symbols

    def consistent_with_analytic(self, sigmas: float = 4.0) -> bool:
        """Binomial consistency test against Eq. (3)."""
        p = self.analytic_ser
        std = (p * (1.0 - p) / max(self.n_symbols, 1)) ** 0.5
        return abs(self.measured_ser - p) <= sigmas * std + 1e-12


@dataclass
class MonteCarloValidator:
    """Stochastic replays of the analytic link-model quantities."""

    config: SystemConfig = field(default_factory=SystemConfig)

    def symbol_error_rate(self, pattern: SymbolPattern,
                          errors: SlotErrorModel,
                          rng: np.random.Generator,
                          n_symbols: int = 5000) -> SymbolErrorEstimate:
        """Empirical SER of a pattern through the real codec."""
        if n_symbols < 1:
            raise ValueError("n_symbols must be positive")
        n, k = pattern.n_slots, pattern.n_on
        with span("montecarlo.symbol_error_rate", n_symbols=n_symbols,
                  pattern=f"S({n},{k})"):
            capacity = symbol_capacity(n, k)
            values = rng.integers(0, capacity, size=n_symbols)
            n_errors = 0
            n_undetected = 0
            for value in values:
                slots = list(encode_symbol(int(value), n, k))
                received = corrupt_slots(slots, errors, rng)
                try:
                    decoded = decode_symbol(received, k)
                except CodewordWeightError:
                    n_errors += 1
                    continue
                if decoded != value:
                    n_errors += 1
                    n_undetected += 1
        registry = metrics()
        registry.counter("repro_montecarlo_symbols_total",
                         help="symbols replayed by the scalar reference "
                              "engine").inc(n_symbols)
        registry.counter("repro_montecarlo_symbol_errors_total",
                         help="symbol errors observed by the scalar "
                              "reference engine").inc(n_errors)
        return SymbolErrorEstimate(
            n_symbols=n_symbols,
            n_errors=n_errors,
            n_undetected=n_undetected,
            analytic_ser=pattern.symbol_error_rate(errors),
        )

    def frame_loss_rate(self, design: SchemeDesign, errors: SlotErrorModel,
                        rng: np.random.Generator, n_frames: int = 200,
                        payload: bytes | None = None) -> tuple[float, float]:
        """(measured, analytic) frame loss through the real receiver."""
        from .linkmodel import frame_success_probability

        if n_frames < 1:
            raise ValueError("n_frames must be positive")
        payload = (payload if payload is not None
                   else default_payload(self.config.payload_bytes))
        tx = Transmitter(self.config)
        rx = Receiver(self.config)
        slots = tx.encode_frame(payload, design)
        losses = 0
        for _ in range(n_frames):
            received = corrupt_slots(slots, errors, rng)
            try:
                frame = rx.decode_frame(received)
                if frame.payload != payload:
                    losses += 1
            except FrameError:
                losses += 1
        analytic = 1.0 - frame_success_probability(
            design, errors, self.config, len(payload))
        return losses / n_frames, analytic
