"""Analytic link model: scheme + channel → throughput.

The figure harnesses need the *expected* throughput of each scheme at a
given dimming level and channel condition, with the real frame
overheads (Table 1) included.  Two flavours:

* :func:`expected_goodput` — payload bits per unit airtime, with frame
  loss from the slot error model.  This matches the paper's throughput
  metric: the prototype keeps transmitting while ACKs return over
  Wi-Fi, so ACK latency does not stall the link (only CRC-failed frames
  are lost).
* :func:`stop_and_wait_goodput` — the conservative one-outstanding-
  frame variant (delegates to the MAC), for the ARQ-focused analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import ModulationScheme, SchemeDesign
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..link.mac import StopAndWaitMac, header_success_probability
from ..link.transmitter import Transmitter
from ..phy.channel import VlcChannel, calibrated_channel
from ..phy.optics import LinkGeometry


def frame_slot_count(design: SchemeDesign, config: SystemConfig,
                     payload_bytes: int | None = None) -> int:
    """Expected slots per frame: Table 1 overhead + modulated section."""
    tx = Transmitter(config)
    n_payload = payload_bytes if payload_bytes is not None else config.payload_bytes
    n_bits = 8 * (n_payload + 2)  # payload + CRC
    return (tx.frame_overhead_slots(design, n_payload)
            + design.payload_slots(n_bits))


def frame_success_probability(design: SchemeDesign, errors: SlotErrorModel,
                              config: SystemConfig,
                              payload_bytes: int | None = None) -> float:
    """Probability one frame survives: header and payload both clean."""
    n_payload = payload_bytes if payload_bytes is not None else config.payload_bytes
    n_bits = 8 * (n_payload + 2)
    return (header_success_probability(errors)
            * design.success_probability(n_bits, errors))


def expected_goodput(design: SchemeDesign, errors: SlotErrorModel,
                     config: SystemConfig,
                     payload_bytes: int | None = None) -> float:
    """Expected delivered payload bits per second of airtime.

    goodput = payload_bits · P(frame ok) / (frame_slots · t_slot)
    """
    n_payload = payload_bytes if payload_bytes is not None else config.payload_bytes
    slots = frame_slot_count(design, config, n_payload)
    p_ok = frame_success_probability(design, errors, config, n_payload)
    return 8 * n_payload * p_ok / (slots * config.t_slot)


def stop_and_wait_goodput(design: SchemeDesign, errors: SlotErrorModel,
                          config: SystemConfig,
                          payload_bytes: int | None = None) -> float:
    """Goodput when only one frame may be outstanding (ACK stalls)."""
    return StopAndWaitMac(config).expected_throughput(design, errors,
                                                      payload_bytes)


@dataclass
class LinkEvaluator:
    """Binds a channel condition and evaluates schemes against it.

    The designer's *candidate pruning* intentionally keeps using the
    paper's conservative measured constants (the design-time error
    budget), while the *achieved throughput* uses the actual channel
    condition — exactly the paper's methodology (P1/P2 measured once at
    the 3.6 m worst case, experiments run at 3 m).
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    channel: VlcChannel | None = None
    geometry: LinkGeometry = field(
        default_factory=lambda: LinkGeometry.on_axis(3.0))
    ambient: float = 1.0

    def __post_init__(self) -> None:
        if self.channel is None:
            self.channel = calibrated_channel(self.config)
        self._errors = self.channel.slot_error_model(self.geometry, self.ambient)

    @property
    def errors(self) -> SlotErrorModel:
        """The slot error model of the bound condition."""
        return self._errors

    def throughput_bps(self, scheme: ModulationScheme, dimming: float,
                       payload_bytes: int | None = None) -> float:
        """Expected goodput of a scheme at a dimming level."""
        design = scheme.design_clamped(dimming)
        return expected_goodput(design, self._errors, self.config,
                                payload_bytes)

    def at(self, geometry: LinkGeometry,
           ambient: float | None = None) -> "LinkEvaluator":
        """A new evaluator at a different placement."""
        return LinkEvaluator(
            config=self.config,
            channel=self.channel,
            geometry=geometry,
            ambient=self.ambient if ambient is None else ambient,
        )
