"""Burst errors: shadowing and blockage on the optical link.

The i.i.d. slot error model of Eq. (3) captures photodiode noise, but a
VLC link also fails in bursts — a hand, a passer-by or a swinging
fixture interrupts the line of sight for milliseconds at a time.  The
classic two-state Gilbert-Elliott chain models this: a GOOD state with
the calibrated noise-floor error probabilities and a BAD (shadowed)
state where slots are essentially coin flips.

Used by the MAC robustness tests and the ``shadowed_office`` example to
show how frame-level ARQ rides out blockage events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errormodel import SlotErrorModel


@dataclass(frozen=True)
class GilbertElliottChannel:
    """Two-state Markov slot error process.

    Attributes:
        good: Slot error model while the line of sight is clear.
        bad: Slot error model while shadowed (default: coin flips).
        p_good_to_bad: Per-slot probability of a blockage starting.
        p_bad_to_good: Per-slot probability of the blockage clearing;
            1/p is the mean blockage length in slots (e.g. a 100 ms
            swipe at 8 us slots is 12 500 slots).
    """

    good: SlotErrorModel
    bad: SlotErrorModel = SlotErrorModel(0.5, 0.5)
    p_good_to_bad: float = 1e-5
    p_bad_to_good: float = 1e-3

    def __post_init__(self) -> None:
        for name, p in (("p_good_to_bad", self.p_good_to_bad),
                        ("p_bad_to_good", self.p_bad_to_good)):
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1]")

    @property
    def steady_state_bad_fraction(self) -> float:
        """Long-run fraction of slots spent shadowed."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def mean_burst_slots(self) -> float:
        """Expected length of one blockage in slots."""
        return 1.0 / self.p_bad_to_good

    def average_error_model(self) -> SlotErrorModel:
        """The i.i.d. model with the same long-run error rates.

        Useful as the comparison point: bursts concentrate the same
        number of slot errors into fewer frames, so frame loss under
        bursts is *lower* than the i.i.d. average predicts — the
        interleaving argument in reverse.
        """
        w_bad = self.steady_state_bad_fraction
        w_good = 1.0 - w_bad
        return SlotErrorModel(
            w_good * self.good.p_off_error + w_bad * self.bad.p_off_error,
            w_good * self.good.p_on_error + w_bad * self.bad.p_on_error,
        )

    def state_sequence(self, n_slots: int, rng: np.random.Generator,
                       start_bad: bool = False) -> np.ndarray:
        """Boolean array: True where the slot is shadowed."""
        if n_slots < 0:
            raise ValueError("n_slots must be non-negative")
        states = np.empty(n_slots, dtype=bool)
        bad = start_bad
        draws = rng.random(n_slots)
        for i in range(n_slots):
            states[i] = bad
            if bad:
                if draws[i] < self.p_bad_to_good:
                    bad = False
            else:
                if draws[i] < self.p_good_to_bad:
                    bad = True
        return states

    def corrupt(self, slots: list[bool], rng: np.random.Generator,
                start_bad: bool = False) -> tuple[list[bool], np.ndarray]:
        """Apply the burst process to a slot stream.

        Returns the corrupted slots and the shadow mask (for metrics).
        """
        shadow = self.state_sequence(len(slots), rng, start_bad)
        flips = rng.random(len(slots))
        out = []
        for slot, shadowed, draw in zip(slots, shadow, flips):
            model = self.bad if shadowed else self.good
            p = model.p_on_error if slot else model.p_off_error
            out.append(not slot if draw < p else slot)
        return out, shadow
