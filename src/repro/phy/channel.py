"""End-to-end link budget: geometry + ambient → slot error probabilities.

This is the glue between the physical substrate and the modulation
layer.  A :class:`VlcChannel` combines the Lambertian optics and the
photodiode noise model and produces, for any placement and ambient
level, the :class:`~repro.core.errormodel.SlotErrorModel` that the
AMPPM designer and the analytic link model consume.

Slot detection is a two-level Gaussian decision: after DC removal the
receiver sees a swing of s = R·P_rx between OFF and ON slot means and
thresholds at θ = t·s.  Then

    P1 = Q(t·s / σ)      (OFF decoded as ON)
    P2 = Q((1-t)·s / σ)  (ON decoded as OFF)

:func:`calibrated_channel` solves for (σ, t) such that the paper's
measured constants — P1 = 9e-5, P2 = 8e-5 at the worst case of 3.6 m
and full ambient — are met exactly, anchoring the whole distance/angle
behaviour of Figs. 16-17 to the paper's operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from .optics import LinkGeometry, OpticalFrontEnd
from .photodiode import PhotodiodeModel

#: The paper's empirical worst case: 3.6 m, ceiling lights on, blind up.
REFERENCE_DISTANCE_M = 3.6
REFERENCE_AMBIENT = 1.0


def q_function(z: float) -> float:
    """Gaussian tail probability Q(z) = P[N(0,1) > z]."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def q_inverse(p: float, tol: float = 1e-12) -> float:
    """Inverse of :func:`q_function` by bisection (p in (0, 0.5])."""
    if not 0.0 < p <= 0.5:
        raise ValueError("q_inverse expects p in (0, 0.5]")
    lo, hi = 0.0, 40.0
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if q_function(mid) > p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class VlcChannel:
    """A calibrated optical link.

    ``threshold_fraction`` is the decision threshold position within the
    OFF→ON swing; slightly below one half makes OFF errors a bit more
    likely than ON errors, matching the paper's P1 > P2.
    """

    optics: OpticalFrontEnd = field(default_factory=OpticalFrontEnd)
    photodiode: PhotodiodeModel = field(default_factory=PhotodiodeModel)
    threshold_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_fraction < 1.0:
            raise ValueError("threshold_fraction must lie in (0, 1)")

    def signal_swing(self, geometry: LinkGeometry) -> float:
        """Photocurrent swing between OFF and ON slots (amps)."""
        return self.photodiode.signal_current(
            self.optics.received_power_w(geometry))

    def snr(self, geometry: LinkGeometry, ambient: float) -> float:
        """Amplitude SNR: swing over RMS noise (0 when outside FoV)."""
        sigma = self.photodiode.noise_sigma(ambient)
        if sigma == 0:
            return math.inf
        return self.signal_swing(geometry) / sigma

    def slot_error_model(self, geometry: LinkGeometry,
                         ambient: float = REFERENCE_AMBIENT,
                         extra_noise_a: float = 0.0) -> SlotErrorModel:
        """Per-slot error probabilities at a placement and ambient level.

        ``extra_noise_a`` adds an RMS current in quadrature with the
        photodiode noise — the hook co-channel interference from
        neighbouring luminaires enters through (see
        :mod:`repro.net.interference`).
        """
        if extra_noise_a < 0:
            raise ValueError("extra_noise_a must be non-negative")
        swing = self.signal_swing(geometry)
        sigma = math.hypot(self.photodiode.noise_sigma(ambient),
                           extra_noise_a)
        if swing <= 0.0:
            return SlotErrorModel(0.5, 0.5)  # outside FoV: coin flips
        if sigma == 0.0:
            return SlotErrorModel.ideal()
        t = self.threshold_fraction
        p_off = q_function(t * swing / sigma)
        p_on = q_function((1.0 - t) * swing / sigma)
        return SlotErrorModel(p_off, p_on)


def calibrated_channel(config: SystemConfig | None = None,
                       optics: OpticalFrontEnd | None = None,
                       photodiode: PhotodiodeModel | None = None) -> VlcChannel:
    """Build a channel that reproduces the paper's measured constants.

    Solves for the noise floor and threshold position such that at the
    reference point (3.6 m on-axis, full ambient) the slot error
    probabilities equal ``config.p_off_error`` / ``config.p_on_error``.
    The supplied photodiode's relative ambient-vs-thermal noise split is
    preserved; only the overall scale is adjusted.
    """
    config = config if config is not None else SystemConfig()
    optics = optics if optics is not None else OpticalFrontEnd()
    photodiode = photodiode if photodiode is not None else PhotodiodeModel()

    z_off = q_inverse(config.p_off_error)
    z_on = q_inverse(config.p_on_error)
    threshold = z_off / (z_off + z_on)

    reference = LinkGeometry.on_axis(REFERENCE_DISTANCE_M)
    swing = photodiode.signal_current(optics.received_power_w(reference))
    target_sigma = threshold * swing / z_off
    current_sigma = photodiode.noise_sigma(REFERENCE_AMBIENT)
    scale = target_sigma / current_sigma

    calibrated_pd = PhotodiodeModel(
        responsivity_a_per_w=photodiode.responsivity_a_per_w,
        thermal_noise_a=photodiode.thermal_noise_a * scale,
        ambient_noise_gain=photodiode.ambient_noise_gain * scale,
        ambient_full_current_a=photodiode.ambient_full_current_a,
    )
    return VlcChannel(optics, calibrated_pd, threshold)
