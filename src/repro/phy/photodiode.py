"""Photodiode + transimpedance amplifier: light in, noisy current out.

The receiver chain (SFH206K photodiode into a TLC237 amplifier) is
modelled as a responsivity that converts optical power to photocurrent,
an additive ambient-light photocurrent, and Gaussian noise whose
variance has a thermal floor plus an ambient-dependent (shot) term —
the reason the paper's dynamic run loses a little throughput when the
blind is fully up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PhotodiodeModel:
    """Optical-to-electrical conversion with calibrated noise.

    Attributes:
        responsivity_a_per_w: Photocurrent per watt of incident light.
        thermal_noise_a: RMS noise current with no ambient light.
        ambient_noise_gain: Multiplies sqrt(ambient) to add shot noise;
            ``ambient`` is the normalized 0..1 ambient level.
        ambient_full_current_a: Photocurrent produced by ambient level
            1.0 (the DC pedestal the receiver must remove).
    """

    responsivity_a_per_w: float = 0.62
    thermal_noise_a: float = 1.0e-8
    ambient_noise_gain: float = 0.5e-8
    ambient_full_current_a: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.responsivity_a_per_w <= 0:
            raise ValueError("responsivity must be positive")
        if self.thermal_noise_a < 0 or self.ambient_noise_gain < 0:
            raise ValueError("noise terms must be non-negative")
        if self.ambient_full_current_a < 0:
            raise ValueError("ambient_full_current_a must be non-negative")

    def signal_current(self, optical_power_w: float) -> float:
        """Photocurrent for a given received optical power."""
        if optical_power_w < 0:
            raise ValueError("optical power must be non-negative")
        return self.responsivity_a_per_w * optical_power_w

    def noise_sigma(self, ambient: float) -> float:
        """RMS noise current at a normalized ambient level."""
        if not 0.0 <= ambient <= 1.0:
            raise ValueError("ambient must lie in [0, 1]")
        return math.hypot(self.thermal_noise_a,
                          self.ambient_noise_gain * math.sqrt(ambient))

    def ambient_current(self, ambient: float) -> float:
        """DC photocurrent contributed by the ambient light."""
        if not 0.0 <= ambient <= 1.0:
            raise ValueError("ambient must lie in [0, 1]")
        return self.ambient_full_current_a * ambient

    def receive(self, optical_waveform_w: np.ndarray, ambient: float,
                rng: np.random.Generator) -> np.ndarray:
        """Convert an optical waveform to a noisy current waveform."""
        optical = np.asarray(optical_waveform_w, dtype=float)
        current = self.responsivity_a_per_w * optical
        current = current + self.ambient_current(ambient)
        sigma = self.noise_sigma(ambient)
        if sigma > 0:
            current = current + rng.normal(0.0, sigma, size=current.shape)
        return current

    def receive_batch(self, optical_waveform_w: np.ndarray, ambient: float,
                      rng: np.random.Generator, n_copies: int) -> np.ndarray:
        """``n_copies`` independent noisy receptions of one waveform.

        Returns an ``(n_copies, n_samples)`` matrix; the deterministic
        photocurrent is computed once and the noise drawn in a single
        pass.  Row ``i`` consumes exactly the draws the ``i``-th
        sequential :meth:`receive` call would, so a batched run matches
        a scalar loop bit-for-bit under a shared seed.
        """
        if n_copies < 1:
            raise ValueError("n_copies must be positive")
        optical = np.asarray(optical_waveform_w, dtype=float)
        current = self.responsivity_a_per_w * optical
        current = current + self.ambient_current(ambient)
        sigma = self.noise_sigma(ambient)
        if sigma > 0:
            return current[None, :] + rng.normal(
                0.0, sigma, size=(n_copies, current.size))
        return np.broadcast_to(current, (n_copies, current.size)).copy()
