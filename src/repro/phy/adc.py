"""ADC front-end: sampling and quantisation (TI ADS7883 stand-in).

The paper samples the amplified photocurrent at 500 kHz (4x the slot
rate) through a 12-bit SPI ADC driven by a BeagleBone PRU.  Only the
properties that shape decoding are modelled: full-scale clipping,
uniform quantisation, and the sample rate bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AdcModel:
    """Uniform quantiser with saturation.

    Attributes:
        bits: Resolution (ADS7883: 12).
        full_scale: Input value mapped to the top code; inputs are
            clipped into [0, full_scale].
        sample_rate_hz: Nominal sampling rate (bookkeeping only; the
            waveform synthesiser decides the actual sample spacing).
    """

    bits: int = 12
    full_scale: float = 1.0e-5
    sample_rate_hz: float = 500e3

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be at least 1")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")

    @property
    def levels(self) -> int:
        """Number of output codes, 2**bits."""
        return 1 << self.bits

    @property
    def lsb(self) -> float:
        """Input step per code."""
        return self.full_scale / (self.levels - 1)

    def quantize(self, signal: np.ndarray) -> np.ndarray:
        """Convert an analog waveform to integer codes."""
        clipped = np.clip(np.asarray(signal, dtype=float), 0.0, self.full_scale)
        return np.round(clipped / self.lsb).astype(np.int64)

    def to_analog(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct the analog value each code represents."""
        return np.asarray(codes, dtype=float) * self.lsb

    def convert(self, signal: np.ndarray) -> np.ndarray:
        """Quantise and reconstruct: the waveform the software sees."""
        return self.to_analog(self.quantize(signal))
