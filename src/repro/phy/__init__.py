"""Physical substrate: optics, LED, photodiode, ADC and the link budget."""

from .adc import AdcModel
from .burst import GilbertElliottChannel
from .channel import (
    REFERENCE_AMBIENT,
    REFERENCE_DISTANCE_M,
    VlcChannel,
    calibrated_channel,
    q_function,
    q_inverse,
)
from .led import LedModel
from .optics import LinkGeometry, OpticalFrontEnd
from .photodiode import PhotodiodeModel
from .waveform import SlotSampler, WaveformSynthesizer

__all__ = [
    "AdcModel",
    "GilbertElliottChannel",
    "LedModel",
    "LinkGeometry",
    "OpticalFrontEnd",
    "PhotodiodeModel",
    "REFERENCE_AMBIENT",
    "REFERENCE_DISTANCE_M",
    "SlotSampler",
    "VlcChannel",
    "WaveformSynthesizer",
    "calibrated_channel",
    "q_function",
    "q_inverse",
]
