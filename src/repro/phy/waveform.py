"""Waveform synthesis and the receiver sampling front-end.

The slot-level world of the modulation layer meets the sample-level
world of the hardware here:

* :class:`WaveformSynthesizer` — turn ON/OFF slots into the optical
  waveform the LED actually emits (oversampled, edge-filtered) and then
  into the noisy, quantised sample stream the ADC hands to software.
* :class:`SlotSampler` — the inverse direction: average the samples of
  each slot and threshold against the midpoint of the observed swing,
  recovering ON/OFF decisions.

Frame-level synchronisation (preamble search) lives in
:mod:`repro.link.receiver`; this module assumes slot alignment is known
or is being searched by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.params import SystemConfig
from ..obs import metrics, span
from .adc import AdcModel
from .channel import VlcChannel
from .led import LedModel
from .optics import LinkGeometry


@dataclass(frozen=True)
class WaveformSynthesizer:
    """TX-side chain: slots → drive → light → photocurrent → samples."""

    config: SystemConfig = field(default_factory=SystemConfig)
    led: LedModel = field(default_factory=LedModel)

    def drive_waveform(self, slots: Sequence[bool]) -> np.ndarray:
        """Ideal 0/1 command waveform, ``oversampling`` samples per slot."""
        slot_array = np.asarray([1.0 if s else 0.0 for s in slots])
        return np.repeat(slot_array, self.config.oversampling)

    def emitted_waveform(self, slots: Sequence[bool],
                         initial: float = 0.0) -> np.ndarray:
        """Normalized optical intensity after LED edge filtering."""
        drive = self.drive_waveform(slots)
        return self.led.apply(drive, self.config.sample_rate, initial=initial)

    def default_adc(self, channel: VlcChannel, geometry: LinkGeometry,
                    ambient: float) -> AdcModel:
        """An ADC whose full scale spans the *actual* operating point.

        The span covers the ambient pedestal plus the signal swing the
        given geometry really delivers, with margin for noise peaks —
        previously the span was hardcoded to a 0.5 m / full-ambient
        link, so at shorter range (or brighter ambient) the ADC
        silently clipped the top of the signal.
        """
        pd = channel.photodiode
        span = (pd.ambient_current(ambient)
                + pd.signal_current(channel.optics.received_power_w(geometry)))
        span = 1.05 * span + 8.0 * pd.noise_sigma(ambient)
        if span <= 0.0:
            # Degenerate dark/blocked link: any positive scale works.
            span = pd.ambient_current(1.0) or 1.0e-6
        return AdcModel(bits=self.config.adc_bits, full_scale=span,
                        sample_rate_hz=self.config.sample_rate)

    def received_samples(self, slots: Sequence[bool], channel: VlcChannel,
                         geometry: LinkGeometry, ambient: float,
                         rng: np.random.Generator,
                         adc: AdcModel | None = None) -> np.ndarray:
        """The full pipeline: what the receiver software actually sees.

        Returns the quantised photocurrent waveform (amps) including
        the ambient DC pedestal and calibrated noise.
        """
        light = self.emitted_waveform(slots)
        optical_power = light * channel.optics.received_power_w(geometry)
        current = channel.photodiode.receive(optical_power, ambient, rng)
        if adc is None:
            adc = self.default_adc(channel, geometry, ambient)
        samples = adc.convert(current)
        metrics().counter("repro_waveform_samples_total",
                          help="ADC samples synthesised").inc(samples.size)
        return samples

    def received_samples_batch(self, slots: Sequence[bool],
                               channel: VlcChannel, geometry: LinkGeometry,
                               ambient: float, rng: np.random.Generator,
                               n_copies: int,
                               adc: AdcModel | None = None) -> np.ndarray:
        """``n_copies`` independent noisy receptions of the same frame.

        The deterministic part of the chain (LED edge filter, optics,
        ambient pedestal) is synthesised once; only the noise is drawn
        per copy, as an ``(n_copies, n_samples)`` matrix.  Row ``i``
        consumes exactly the draws the ``i``-th sequential
        :meth:`received_samples` call would, so batch and scalar runs
        agree sample-for-sample under a shared seed.
        """
        if n_copies < 1:
            raise ValueError("n_copies must be positive")
        with span("waveform.received_samples_batch", n_copies=n_copies,
                  n_slots=len(slots)):
            light = self.emitted_waveform(slots)
            optical_power = light * channel.optics.received_power_w(geometry)
            current = channel.photodiode.receive_batch(
                optical_power, ambient, rng, n_copies)
            if adc is None:
                adc = self.default_adc(channel, geometry, ambient)
            samples = adc.convert(current)
        metrics().counter("repro_waveform_samples_total",
                          help="ADC samples synthesised").inc(samples.size)
        return samples


@dataclass(frozen=True)
class SlotSampler:
    """RX-side slot recovery from an aligned sample stream."""

    config: SystemConfig = field(default_factory=SystemConfig)
    #: fraction of each slot's samples kept, to dodge the slot edges
    guard_fraction: float = 0.5
    #: samples the kept window is shifted towards the slot's tail, where
    #: the LED has settled; clamped so the window stays inside the slot
    #: (so with ``guard_fraction=1.0`` the shift is necessarily a no-op).
    #: 0 keeps the window truly centred.
    tail_bias: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.guard_fraction <= 1.0:
            raise ValueError("guard_fraction must lie in (0, 1]")
        if self.tail_bias < 0:
            raise ValueError("tail_bias must be non-negative")

    def slot_means(self, samples: np.ndarray, n_slots: int,
                   offset: int = 0) -> np.ndarray:
        """Per-slot mean of each slot's kept window, starting at ``offset``.

        The window holds the ``guard_fraction`` middle samples of the
        slot, shifted ``tail_bias`` samples towards the tail (clamped to
        the slot boundary).
        """
        per_slot = self.config.oversampling
        needed = offset + n_slots * per_slot
        samples = np.asarray(samples, dtype=float)
        if samples.size < needed:
            raise ValueError(
                f"need {needed} samples for {n_slots} slots, got {samples.size}"
            )
        window = samples[offset:needed].reshape(n_slots, per_slot)
        keep = max(1, int(round(per_slot * self.guard_fraction)))
        start = (per_slot - keep) // 2
        start = min(per_slot - keep, start + self.tail_bias)
        return window[:, start:start + keep].mean(axis=1)

    def threshold(self, means: np.ndarray) -> float:
        """Decision threshold: midpoint of the observed swing.

        Uses the 5th/95th percentiles rather than min/max so noise
        outliers — and the ADC's clipping of near-zero currents in dark
        ambient conditions — do not drag the threshold into one of the
        clusters.
        """
        means = np.asarray(means, dtype=float)
        if means.size == 0:
            raise ValueError("cannot threshold an empty slot sequence")
        lo = float(np.percentile(means, 5))
        hi = float(np.percentile(means, 95))
        return 0.5 * (lo + hi)

    def decide(self, samples: np.ndarray, n_slots: int, offset: int = 0,
               threshold: float | None = None) -> list[bool]:
        """Recover ON/OFF slot decisions from aligned samples."""
        means = self.slot_means(samples, n_slots, offset)
        level = self.threshold(means) if threshold is None else threshold
        return [bool(m > level) for m in means]
