"""Free-space optical propagation: the Lambertian line-of-sight link.

The standard VLC channel model (Komine & Nakagawa, the paper's [18]):
an LED of Lambertian order m radiates, and a photodiode of area A with
field-of-view Ψc collects

    H(0) = (m + 1) / (2 π d²) · cos^m(φ) · A · cos(ψ),   ψ <= Ψc

where φ is the irradiance angle at the LED and ψ the incidence angle at
the receiver.  The order m follows from the LED's half-power semi-angle
φ_1/2 as m = -ln 2 / ln cos(φ_1/2).

Defaults model the paper's test bed: a disassembled Philips 4.7 W
downlight (narrow beam — the Fig. 17 cut-offs imply a semi-angle near
15°) and an OSRAM SFH206K photodiode (7.5 mm², wide FoV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkGeometry:
    """Relative placement of transmitter and receiver.

    The paper's Figs. 16-17 sweep ``distance_m`` and the incidence
    angle; for a receiver moved along an arc facing the LED the
    irradiance and incidence angles coincide, which is how
    :meth:`on_arc` builds geometries.
    """

    distance_m: float
    irradiance_angle_deg: float = 0.0
    incidence_angle_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.distance_m <= 0:
            raise ValueError("distance must be positive")
        for name, angle in (("irradiance", self.irradiance_angle_deg),
                            ("incidence", self.incidence_angle_deg)):
            if not 0.0 <= angle < 90.0:
                raise ValueError(f"{name} angle must lie in [0, 90) degrees")

    @classmethod
    def on_axis(cls, distance_m: float) -> "LinkGeometry":
        """Receiver directly under the LED, facing it."""
        return cls(distance_m)

    @classmethod
    def on_arc(cls, distance_m: float, angle_deg: float) -> "LinkGeometry":
        """Receiver on a constant-distance arc, as in Fig. 17."""
        return cls(distance_m, angle_deg, angle_deg)

    @classmethod
    def from_offsets(cls, horizontal_m: float,
                     vertical_m: float) -> "LinkGeometry":
        """Geometry of a ceiling luminaire and an upward-facing receiver.

        ``horizontal_m`` is the floor-plane offset from the point under
        the luminaire, ``vertical_m`` the ceiling-to-photodiode drop.
        With the photodiode facing straight up, the irradiance and
        incidence angles coincide; the angle is clamped just below 90°
        so extreme offsets stay constructible (the Lambertian gain
        there is negligible anyway).
        """
        if horizontal_m < 0:
            raise ValueError("horizontal_m must be non-negative")
        if vertical_m <= 0:
            raise ValueError("vertical_m must be positive")
        distance = math.hypot(horizontal_m, vertical_m)
        angle = math.degrees(math.atan2(horizontal_m, vertical_m))
        angle = min(angle, 89.0)
        return cls(distance, angle, angle)


@dataclass(frozen=True)
class OpticalFrontEnd:
    """LED beam shape plus photodiode collection properties."""

    tx_power_w: float = 4.7
    semi_angle_deg: float = 15.0
    rx_area_m2: float = 7.5e-6
    rx_fov_deg: float = 60.0
    optical_filter_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0:
            raise ValueError("tx_power_w must be positive")
        if not 0.0 < self.semi_angle_deg < 90.0:
            raise ValueError("semi_angle_deg must lie in (0, 90)")
        if self.rx_area_m2 <= 0:
            raise ValueError("rx_area_m2 must be positive")
        if not 0.0 < self.rx_fov_deg <= 90.0:
            raise ValueError("rx_fov_deg must lie in (0, 90]")
        if self.optical_filter_gain <= 0:
            raise ValueError("optical_filter_gain must be positive")

    @property
    def lambertian_order(self) -> float:
        """m = -ln 2 / ln cos(φ_1/2)."""
        return -math.log(2.0) / math.log(math.cos(math.radians(self.semi_angle_deg)))

    def channel_gain(self, geometry: LinkGeometry) -> float:
        """Dimensionless DC gain H(0); zero outside the receiver FoV."""
        if geometry.incidence_angle_deg > self.rx_fov_deg:
            return 0.0
        m = self.lambertian_order
        phi = math.radians(geometry.irradiance_angle_deg)
        psi = math.radians(geometry.incidence_angle_deg)
        radial = (m + 1.0) / (2.0 * math.pi * geometry.distance_m ** 2)
        return (radial * math.cos(phi) ** m * self.rx_area_m2
                * self.optical_filter_gain * math.cos(psi))

    def received_power_w(self, geometry: LinkGeometry) -> float:
        """Optical power collected by the photodiode for a full-ON LED."""
        return self.tx_power_w * self.channel_gain(geometry)
