"""LED dynamics: the slow edges that bound the slot time.

The paper's Philips luminaire (AC-DC converter removed) still switches
slowly enough that t_slot below 8 us distorts the signal.  A first-order
low-pass — the RC behaviour of the driver plus junction capacitance —
reproduces that mechanism: an ON command ramps the light exponentially
with time constant tau, so short slots never reach full amplitude and
leak into their neighbours (inter-slot interference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LedModel:
    """First-order optical response of the LED + driver chain.

    Attributes:
        rise_tau_s: Time constant of the ON transition.
        fall_tau_s: Time constant of the OFF transition (MOSFET pull-down
            is usually a little faster than the drive-up).
    """

    rise_tau_s: float = 2.0e-6
    fall_tau_s: float = 1.6e-6

    def __post_init__(self) -> None:
        if self.rise_tau_s <= 0 or self.fall_tau_s <= 0:
            raise ValueError("time constants must be positive")

    def min_slot_time(self, settle_fraction: float = 0.98) -> float:
        """Shortest slot that settles to ``settle_fraction`` of full swing.

        With the defaults this is ≈ 7.8 us — the reason the paper fixes
        t_slot at 8 us.
        """
        if not 0.0 < settle_fraction < 1.0:
            raise ValueError("settle_fraction must lie in (0, 1)")
        tau = max(self.rise_tau_s, self.fall_tau_s)
        return -tau * math.log(1.0 - settle_fraction)

    def apply(self, drive: np.ndarray, sample_rate: float,
              initial: float = 0.0) -> np.ndarray:
        """Filter a 0/1 drive waveform into the emitted light waveform.

        ``drive`` is the ideal commanded waveform (one entry per sample);
        the output is the normalized optical intensity after the
        asymmetric first-order response.
        """
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        drive = np.asarray(drive, dtype=float)
        dt = 1.0 / sample_rate
        alpha_rise = 1.0 - math.exp(-dt / self.rise_tau_s)
        alpha_fall = 1.0 - math.exp(-dt / self.fall_tau_s)
        out = np.empty_like(drive)
        state = float(initial)
        for i, target in enumerate(drive):
            alpha = alpha_rise if target > state else alpha_fall
            state += alpha * (target - state)
            out[i] = state
        return out

    def settled_amplitude(self, slot_time: float) -> float:
        """Fraction of full swing reached within one isolated ON slot."""
        if slot_time <= 0:
            raise ValueError("slot_time must be positive")
        return 1.0 - math.exp(-slot_time / self.rise_tau_s)
