"""Heap-based discrete-event kernel.

The closed-loop simulations in :mod:`repro.net` historically advanced
in lockstep ``step(t)`` calls, which cannot express events that happen
*between* ticks — a Wi-Fi report landing 2 ms after it was sensed, an
ACK timeout firing mid-window, a receiver dropping out at an arbitrary
instant.  This kernel gives every consumer one real clock:

* :class:`EventScheduler` — a binary-heap event queue.  Events fire in
  ``(time, priority, seq)`` order, where ``seq`` is the monotonically
  increasing insertion index; two events at the same time and priority
  therefore dispatch in the order they were scheduled, making same-seed
  runs bit-identical regardless of host or hash randomisation.
* :class:`Event` — an immutable, typed record of one occurrence (kind,
  actor, payload), also the unit the event journal traces.
* :class:`ProcessHandle` — a cancellable handle on a spawned generator
  process (a coroutine that ``yield``-s delays between actions), the
  idiom the periodic sense/control/measure loops are written in.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..obs import metrics, span
from .journal import EventJournal


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence on the simulation clock.

    ``payload`` is a tuple of sorted ``(key, value)`` pairs rather than
    a dict so events stay immutable and cheaply comparable.
    """

    time: float
    kind: str
    seq: int
    priority: int = 0
    actor: str = ""
    payload: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """A payload value by key (``default`` when absent)."""
        for name, value in self.payload:
            if name == key:
                return value
        return default


class CancelledEventError(RuntimeError):
    """Raised when a cancelled handle is asked to do work again."""


class EventHandle:
    """A cancellable reference to a not-yet-dispatched event."""

    __slots__ = ("event", "_cancelled", "_scheduler")

    def __init__(self, event: Event, scheduler: "EventScheduler | None" = None):
        self.event = event
        self._cancelled = False
        self._scheduler = scheduler

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before dispatch."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent).

        The owning scheduler is notified so it can account for the dead
        heap entry (and compact the heap once cancellations dominate).
        """
        if self._cancelled:
            return
        self._cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancelled()


class ProcessHandle:
    """A running generator process on the scheduler.

    The generator yields non-negative delays; between yields it performs
    its actions against the simulation state.  ``cancel()`` stops the
    process before its next resume.
    """

    __slots__ = ("name", "_alive", "_pending")

    def __init__(self, name: str):
        self.name = name
        self._alive = True
        self._pending: EventHandle | None = None

    @property
    def alive(self) -> bool:
        """Whether the process may still be resumed."""
        return self._alive

    def cancel(self) -> None:
        """Stop the process; its pending resume event is cancelled."""
        self._alive = False
        if self._pending is not None:
            self._pending.cancel()


@dataclass
class EventScheduler:
    """The event queue: schedule, cancel, and run events in time order.

    ``journal`` is optional; when set, every *dispatched* event is
    recorded (kind, actor, payload), which is the cheapest way to get a
    full kernel-level trace.  Domain layers usually journal richer
    entries from inside their callbacks instead.
    """

    journal: EventJournal | None = None
    compact_min_pending: int = 64
    compact_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.compact_fraction <= 1.0:
            raise ValueError("compact_fraction must lie in (0, 1]")
        if self.compact_min_pending < 1:
            raise ValueError("compact_min_pending must be positive")
        self._heap: list[tuple[float, int, int, EventHandle,
                               Callable[[Event], None] | None]] = []
        self._seq = 0
        self._now = 0.0
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """Account for a handle cancelled while still on the heap.

        Timer-heavy workloads (retransmission timers, fault schedules)
        cancel far more events than they dispatch; without compaction
        the dead entries pile up and degrade every ``heappush``.  Once
        cancelled entries exceed ``compact_fraction`` of a heap at least
        ``compact_min_pending`` long, the heap is rebuilt without them —
        amortized O(1) per cancellation.
        """
        self._cancelled_in_heap += 1
        if (len(self._heap) >= self.compact_min_pending
                and self._cancelled_in_heap
                > self.compact_fraction * len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant."""
        live = [entry for entry in self._heap if not entry[3].cancelled]
        for entry in self._heap:
            if entry[3].cancelled:
                entry[3]._scheduler = None
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def schedule(self, delay_s: float, kind: str,
                 callback: Callable[[Event], None] | None = None, *,
                 priority: int = 0, actor: str = "",
                 **payload: Any) -> EventHandle:
        """Schedule ``kind`` to fire ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        return self.schedule_at(self._now + delay_s, kind, callback,
                                priority=priority, actor=actor, **payload)

    def schedule_at(self, time_s: float, kind: str,
                    callback: Callable[[Event], None] | None = None, *,
                    priority: int = 0, actor: str = "",
                    **payload: Any) -> EventHandle:
        """Schedule ``kind`` at an absolute time (not before ``now``)."""
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s} before now={self._now}")
        event = Event(time=time_s, kind=kind, seq=self._seq,
                      priority=priority, actor=actor,
                      payload=tuple(sorted(payload.items())))
        handle = EventHandle(event, self)
        heapq.heappush(self._heap,
                       (time_s, priority, self._seq, handle, callback))
        self._seq += 1
        return handle

    def spawn(self, generator: Generator[float, None, None],
              name: str = "process", *, delay_s: float = 0.0,
              priority: int = 0) -> ProcessHandle:
        """Run a generator as a process: each yielded value is the delay
        until its next resume; returning (or ``StopIteration``) ends it.
        """
        handle = ProcessHandle(name)

        def fail(error: BaseException) -> None:
            # The resume event just dispatched, so its handle is spent:
            # leaving it on the process would let a later cancel() poke
            # a dead event.  Journal the failure before the exception
            # unwinds run(), so the trace shows *which* process died.
            handle._alive = False
            handle._pending = None
            if self.journal is not None:
                self.journal.record(self._now, "process-error", name,
                                    error=f"{type(error).__name__}: {error}")

        def resume(_event: Event) -> None:
            if not handle._alive:
                return
            try:
                delay = next(generator)
            except StopIteration:
                handle._alive = False
                handle._pending = None
                return
            except Exception as error:
                fail(error)
                raise
            if delay < 0:
                error = ValueError(
                    f"process {name!r} yielded a negative delay ({delay})")
                fail(error)
                raise error
            handle._pending = self.schedule(delay, f"resume:{name}", resume,
                                            priority=priority, actor=name)

        handle._pending = self.schedule(delay_s, f"resume:{name}", resume,
                                        priority=priority, actor=name)
        return handle

    def step(self) -> Event | None:
        """Dispatch the single next non-cancelled event, if any."""
        while self._heap:
            time_s, _priority, _seq, handle, callback = heapq.heappop(self._heap)
            handle._scheduler = None
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = time_s
            event = handle.event
            if self.journal is not None:
                self.journal.record(event.time, event.kind, event.actor,
                                    **dict(event.payload))
            if callback is not None:
                callback(event)
            return event
        return None

    def run(self, until_s: float | None = None,
            max_events: int | None = None) -> int:
        """Dispatch events in order; returns the number dispatched.

        ``until_s`` stops before any event later than that time (the
        clock then rests at the last dispatched event).  ``max_events``
        bounds runaway event cascades.
        """
        if until_s is not None and until_s < self._now:
            raise ValueError("until_s lies in the past")
        dispatched = 0
        with span("des.run", until_s=until_s):
            while self._heap:
                if max_events is not None and dispatched >= max_events:
                    break
                next_time = self._heap[0][0]
                if until_s is not None and next_time > until_s:
                    break
                if self.step() is not None:
                    dispatched += 1
        registry = metrics()
        registry.counter("repro_des_events_dispatched_total",
                         help="events dispatched by the DES kernel") \
            .inc(dispatched)
        registry.gauge("repro_des_clock_seconds",
                       help="simulation clock after the latest run") \
            .set_max(self._now)
        return dispatched
