"""Discrete-event simulation: kernel, journal, and network processes.

``repro.des`` is the timing substrate the multi-luminaire network model
(:mod:`repro.net.multicell`) runs on: a deterministic heap-based event
scheduler, an append-only event journal doubling as the observability
layer, and DES re-expressions of the Wi-Fi feedback plane and the
stop-and-wait MAC so report latency, ACK timeouts and node dropouts
all share one clock.
"""

from .journal import (
    EventJournal,
    JournalEntry,
    journals_equal,
    write_journal_jsonl,
)
from .kernel import (
    Event,
    EventHandle,
    EventScheduler,
    ProcessHandle,
)
from .processes import DesFeedbackPlane, DesStopAndWaitMac

__all__ = [
    "DesFeedbackPlane",
    "DesStopAndWaitMac",
    "Event",
    "EventHandle",
    "EventJournal",
    "EventScheduler",
    "JournalEntry",
    "ProcessHandle",
    "journals_equal",
    "write_journal_jsonl",
]
