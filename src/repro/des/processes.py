"""Network planes re-expressed as discrete-event processes.

The polled :class:`~repro.net.feedback.FeedbackCollector` and the
closed-form :class:`~repro.link.mac.StopAndWaitMac` both model time
implicitly.  These adapters put them on one :class:`EventScheduler`
clock, so report latency, ACK timeouts and node dropouts interleave the
way they would in the deployed system:

* :class:`DesFeedbackPlane` — a receiver's ambient report becomes a
  scheduled *arrival* event (or a journaled loss); an outage window can
  be raised and lowered by fault-injection events.
* :class:`DesStopAndWaitMac` — a data transfer becomes a chain of
  frame-airtime / ACK-arrival / timeout events with the same success
  statistics as the analytic MAC (per-frame Bernoulli trials against
  :func:`~repro.sim.linkmodel.frame_success_probability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..baselines.base import SchemeDesign
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..link.mac import MacStats
from ..link.supervision import BackoffPolicy
from ..link.wifi import WifiUplink
from ..sim.linkmodel import frame_slot_count, frame_success_probability
from .journal import EventJournal
from .kernel import EventScheduler

if TYPE_CHECKING:  # imported lazily to keep repro.des importable first
    from ..net.feedback import AmbientReport, FeedbackCollector


@dataclass
class DesFeedbackPlane:
    """The Wi-Fi ambient-report plane driven by scheduler events.

    Wraps a :class:`FeedbackCollector`: a submitted report either
    schedules a ``report-arrival`` event at its Wi-Fi delivery time or
    journals a ``report-lost``.  While :attr:`outage` is raised (by
    fault-injection events) every report is lost with reason
    ``"outage"`` — the paper's receivers keep sensing, but the ESP8266
    uplink is down.
    """

    scheduler: EventScheduler
    journal: EventJournal
    collector: "FeedbackCollector"
    outage: bool = False

    def submit(self, report: AmbientReport, rng: np.random.Generator) -> bool:
        """Send one report; returns whether it will be delivered."""
        now = self.scheduler.now
        if self.outage:
            self.journal.record(now, "report-lost", report.node,
                                reason="outage")
            return False
        arrival = self.collector.uplink.deliver(now, rng)
        if arrival is None:
            self.journal.record(now, "report-lost", report.node,
                                reason="wifi-loss")
            return False

        def on_arrival(_event) -> None:
            self.collector.deliver(report, arrival)
            self.journal.record(arrival, "report-arrival", report.node,
                                value=report.value, latency=arrival - now)

        self.scheduler.schedule_at(arrival, "report-arrival", on_arrival,
                                   actor=report.node)
        return True

    def set_outage(self, active: bool) -> None:
        """Raise or lower the uplink outage flag (fault injection)."""
        self.outage = active
        self.journal.record(self.scheduler.now,
                            "uplink-outage" if active else "uplink-restored")

    def estimate(self, fallback: float | None = None) -> float | None:
        """The fused ambient estimate as of the scheduler clock."""
        return self.collector.ambient_estimate(self.scheduler.now,
                                               fallback=fallback)


@dataclass
class DesStopAndWaitMac:
    """Stop-and-wait ARQ as an event chain on the shared clock.

    Each frame occupies the air for its slot time, then either an ACK
    arrives over the Wi-Fi uplink (advancing to the next frame) or the
    ``ack_timeout_s`` event fires and the frame is retransmitted, up to
    ``max_retries`` times.  Frame success is a Bernoulli trial with the
    analytic per-frame probability, so the DES statistics converge to
    :meth:`~repro.link.mac.StopAndWaitMac.expected_throughput`.
    """

    scheduler: EventScheduler
    journal: EventJournal
    config: SystemConfig = field(default_factory=SystemConfig)
    uplink: WifiUplink = field(default_factory=WifiUplink)
    ack_timeout_s: float = 10.0e-3
    max_retries: int = 8
    backoff: BackoffPolicy | None = None

    def __post_init__(self) -> None:
        if self.ack_timeout_s <= 0:
            raise ValueError("ack_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def _timeout_for(self, attempt: int) -> float:
        """The ACK timeout after the ``attempt``-th failure."""
        if self.backoff is None:
            return self.ack_timeout_s
        return self.backoff.timeout_for(attempt)

    def transfer(self, n_frames: int, design: SchemeDesign,
                 errors: SlotErrorModel, rng: np.random.Generator,
                 payload_bytes: int | None = None) -> MacStats:
        """Queue ``n_frames`` frames; stats fill in as events dispatch.

        Returns the live :class:`MacStats` — final once the scheduler
        has run past the last ACK/timeout.
        """
        if n_frames < 1:
            raise ValueError("n_frames must be positive")
        n_payload = (payload_bytes if payload_bytes is not None
                     else self.config.payload_bytes)
        t_frame = (frame_slot_count(design, self.config, n_payload)
                   * self.config.t_slot)
        p_ok = frame_success_probability(design, errors, self.config,
                                         n_payload)
        stats = MacStats()
        started_at = self.scheduler.now

        def send_frame(index: int, attempt: int) -> None:
            stats.frames_sent += 1
            stats.airtime_s += t_frame
            self.scheduler.schedule(t_frame, "frame-airtime-done",
                                    lambda _e: frame_done(index, attempt),
                                    actor=f"frame-{index}")

        def frame_done(index: int, attempt: int) -> None:
            now = self.scheduler.now
            ack_at = None
            if rng.random() < p_ok:
                ack_at = self.uplink.deliver(now, rng)
            if ack_at is not None:
                self.scheduler.schedule_at(
                    ack_at, "ack-arrival",
                    lambda _e: acked(index),
                    actor=f"frame-{index}")
            else:
                self.scheduler.schedule(
                    self._timeout_for(attempt), "ack-timeout",
                    lambda _e: timed_out(index, attempt),
                    actor=f"frame-{index}")

        def acked(index: int) -> None:
            stats.frames_delivered += 1
            stats.payload_bits_acked += 8 * n_payload
            self.journal.record(self.scheduler.now, "frame-acked",
                                f"frame-{index}")
            advance(index)

        def timed_out(index: int, attempt: int) -> None:
            self.journal.record(self.scheduler.now, "ack-timeout",
                                f"frame-{index}", attempt=attempt)
            if attempt < self.max_retries:
                # Only the retry this timeout triggers is a retransmission;
                # the final, abandoning timeout is not.
                stats.retransmissions += 1
                send_frame(index, attempt + 1)
            else:
                stats.frames_abandoned += 1
                self.journal.record(self.scheduler.now, "frame-abandoned",
                                    f"frame-{index}")
                advance(index)

        def advance(index: int) -> None:
            stats.elapsed_s = self.scheduler.now - started_at
            if index + 1 < n_frames:
                send_frame(index + 1, 0)

        send_frame(0, 0)
        return stats
