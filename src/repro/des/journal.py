"""The event journal: a structured per-event trace plus aggregation.

Every discrete-event consumer appends :class:`JournalEntry` records —
``(seq, time, kind, actor, detail)`` — to one :class:`EventJournal`.
The journal is simultaneously

* the *observability layer*: ``counts()``, ``total()`` and ``mean()``
  aggregate over entries, ``tail()`` shows the latest activity, and
  :func:`write_journal_jsonl` exports the full trace for external
  tooling; and
* the *determinism witness*: entries compare exactly (dataclass
  equality over exact floats) and :meth:`digest` collapses a whole run
  into one hex string, so "two same-seed runs are identical" is a
  one-line assertion.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass(frozen=True)
class JournalEntry:
    """One journaled occurrence; ``detail`` is sorted ``(key, value)``."""

    seq: int
    time: float
    kind: str
    actor: str = ""
    detail: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """A detail value by key (``default`` when absent)."""
        for name, value in self.detail:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        """A flat dict form (for JSONL export and ad-hoc inspection)."""
        row: dict[str, Any] = {"seq": self.seq, "time": self.time,
                               "kind": self.kind, "actor": self.actor}
        row.update(self.detail)
        return row


@dataclass
class EventJournal:
    """An append-only trace of journal entries with per-kind counters."""

    entries: list[JournalEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._counts: Counter[str] = Counter(e.kind for e in self.entries)

    def record(self, time: float, kind: str, actor: str = "",
               **detail: Any) -> JournalEntry:
        """Append one entry; ``detail`` keys are sorted for stability."""
        entry = JournalEntry(seq=len(self.entries), time=time, kind=kind,
                             actor=actor, detail=tuple(sorted(detail.items())))
        self.entries.append(entry)
        self._counts[kind] += 1
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventJournal):
            return NotImplemented
        return self.entries == other.entries

    def count(self, kind: str) -> int:
        """How many entries of one kind were recorded."""
        return self._counts[kind]

    def counts(self) -> dict[str, int]:
        """Per-kind entry counts, sorted by kind."""
        return dict(sorted(self._counts.items()))

    def of_kind(self, kind: str, actor: str | None = None) -> list[JournalEntry]:
        """All entries of a kind, optionally filtered to one actor."""
        return [e for e in self.entries
                if e.kind == kind and (actor is None or e.actor == actor)]

    def tail(self, n: int = 10) -> list[JournalEntry]:
        """The last ``n`` entries."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.entries[-n:] if n else []

    def total(self, kind: str, key: str) -> float:
        """Sum of a numeric detail value over all entries of a kind."""
        return float(sum(e.get(key, 0.0) for e in self.of_kind(kind)))

    def mean(self, kind: str, key: str) -> float:
        """Mean of a numeric detail value over entries that carry it.

        Entries of the right kind but *without* the key are excluded —
        previously they entered the denominator as zeros and silently
        dragged the mean towards 0.  :meth:`total` keeps its sum-over-
        all-entries semantics (a missing key contributes nothing).
        """
        values = [value for e in self.of_kind(kind)
                  if (value := e.get(key)) is not None]
        if not values:
            raise ValueError(f"no {kind!r} entries with {key!r} to average")
        return float(sum(values)) / len(values)

    def digest(self) -> str:
        """A SHA-256 fingerprint of the entire trace.

        Floats are hashed through ``repr`` (exact, round-trippable), so
        two digests agree iff the journals are bit-identical.
        """
        hasher = hashlib.sha256()
        for e in self.entries:
            hasher.update(
                f"{e.seq}|{e.time!r}|{e.kind}|{e.actor}|{e.detail!r}\n"
                .encode())
        return hasher.hexdigest()

    def render(self, n_tail: int = 12) -> str:
        """Counters plus the last ``n_tail`` entries as aligned text."""
        lines = [f"event journal: {len(self.entries)} entries"]
        for kind, count in self.counts().items():
            lines.append(f"  {kind:<18} {count:>6}")
        if n_tail and self.entries:
            lines.append(f"  last {min(n_tail, len(self.entries))} events:")
            for e in self.tail(n_tail):
                detail = " ".join(f"{k}={_fmt(v)}" for k, v in e.detail)
                lines.append(f"    [{e.seq:>5}] t={e.time:9.3f}  "
                             f"{e.kind:<16} {e.actor:<14} {detail}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    """Compact detail-value formatting for :meth:`EventJournal.render`."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def write_journal_jsonl(journal: EventJournal,
                        path: str | Path) -> Path:
    """Write a journal as JSON-lines (one entry per line)."""
    path = Path(path)
    with path.open("w") as handle:
        for entry in journal.entries:
            handle.write(json.dumps(entry.as_dict(), sort_keys=True) + "\n")
    return path


def journals_equal(a: EventJournal, b: EventJournal) -> bool:
    """Exact trace equality (the determinism acceptance predicate)."""
    return a.entries == b.entries
